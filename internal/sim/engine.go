// Package sim is a deterministic discrete-event simulator substrate for
// skeleton programs. It executes the same skeleton trees and emits the same
// event protocol as the real task-pool engine (internal/exec), but time is
// virtual: each muscle invocation costs a declared duration and the engine
// advances a virtual clock from completion to completion.
//
// The simulator exists because the paper's evaluation ran on a 12-core/24-
// thread Xeon; reproducing the figures requires parallel wall-clock
// behaviour that a small CI box cannot exhibit. Since the object of study
// is the autonomic controller (estimators, ADG, LP decisions) — which only
// observes events and timestamps — running the identical controller against
// the simulator preserves exactly the behaviour under test, deterministically.
// Differential tests (sim vs the real engine) keep the two substrates
// semantically aligned.
package sim

import (
	"fmt"
	"time"

	"skandium/internal/clock"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// CostModel declares the virtual duration of one muscle invocation on a
// given parameter. Called at invocation start; implementations may be
// stateful (e.g. seeded jitter) but must not depend on wall time.
type CostModel interface {
	Cost(m *muscle.Muscle, param any) time.Duration
}

// CostFunc adapts a function to CostModel.
type CostFunc func(m *muscle.Muscle, param any) time.Duration

// Cost implements CostModel.
func (f CostFunc) Cost(m *muscle.Muscle, param any) time.Duration { return f(m, param) }

// Config configures an Engine.
type Config struct {
	// Events receives the execution's events (nil = fresh registry).
	Events *event.Registry
	// Costs declares muscle durations. Required.
	Costs CostModel
	// LP is the initial level of parallelism (default 1). MaxLP caps
	// SetLP; 0 = uncapped. MaxLP models the hardware thread count of the
	// simulated machine (24 in the paper). In multi-node mode (Nodes set)
	// both count provisioned nodes instead of threads.
	LP    int
	MaxLP int
	// Nodes switches the engine into multi-node mode: the machine park of
	// a simulated cluster. Node i contributes Threads virtual workers, and
	// every muscle scheduled on it pays an extra 2×Link of virtual time
	// (the parameter shipped there and the result shipped back, matching
	// the per-task round trip of internal/dist). With Nodes set, the LP
	// lever provisions nodes: SetLP(n) enables the first n nodes, so the
	// unchanged WCT controller scales a simulated cluster in virtual time
	// exactly like it scales a thread pool.
	Nodes []NodeSpec
	// Partitions imposes network partitions on the simulated cluster
	// (multi-node mode only): during [From, Until) after the run starts the
	// named node is unreachable — no new work is pinned to it, its threads
	// leave the admission capacity, and muscles already running there hold
	// their results until the window heals (the reply is stranded behind
	// the partition, then pays one more Link to ship home). Deterministic:
	// the same windows replay the same virtual timeline.
	Partitions []Partition
	// Gauge, when set, observes (virtual now, active, lp) on transitions.
	Gauge func(now time.Time, active, lp int)
	// Start anchors virtual time (default clock.Epoch).
	Start time.Time
}

// Engine runs one simulated execution at a time. It implements the
// controller's LPControl lever.
type Engine struct {
	clk    *clock.Virtual
	events *event.Registry
	costs  CostModel
	gauge  func(time.Time, int, int)

	lp    int
	maxLP int

	// Multi-node mode (nil outside it): lp counts provisioned nodes, a
	// task's slot is pinned to a node for its whole execution slice, and
	// nodeBusy tracks per-node occupancy for admission.
	nodes    []NodeSpec
	nodeBusy []int
	slotNode []int // slot -> node, valid while the slot is taken
	parts    []Partition
	partBase time.Time // run start the partition windows are relative to

	queue   []*task
	running runHeap
	seq     uint64

	freeSlots []int
	nextSlot  int

	idx   int64
	start time.Time
	err   error

	arrivals  []arrival
	nextArr   int
	results   []StreamResult
	completed int

	// rootFrom/rootProg cache the entry program of the last streamed
	// program: entry instructions are immutable, so every injection of the
	// same program can push the same instructions. Keyed by the Program
	// (not its node) so optimized and raw programs of one node never share
	// a cache line.
	rootFrom *plan.Program
	rootProg []sinstr

	// Engine-owned freelists (the simulator is single-threaded per engine,
	// so recycling needs no synchronization): tasks are reused across
	// activations and injections, fused-chain states across activations.
	// Both grow in slabs, and fused frame stacks are carved from a shared
	// arena, so a burst of B concurrent activations costs O(B/slab)
	// allocations rather than B.
	taskFree   []*task
	fusedFree  []*fusedState
	frameArena []sctx
}

// NodeSpec describes one node of a simulated cluster: its virtual worker
// count and its one-way link latency to the coordinator.
type NodeSpec struct {
	// Threads is the node's virtual worker count (minimum 1).
	Threads int
	// Link is the one-way shipping latency; every muscle run on the node
	// pays 2×Link of virtual time on top of its declared cost.
	Link time.Duration
}

// Partition is one virtual-time partition window of a simulated node.
type Partition struct {
	// Node is the index into Config.Nodes.
	Node int
	// From/Until bound the window relative to the run start (half-open:
	// the node heals at Until exactly).
	From, Until time.Duration
}

// arrival is a pending stream injection.
type arrival struct {
	at    time.Time
	param any
	idx   int
}

// StreamResult is the outcome of one injected parameter of a stream run.
type StreamResult struct {
	Param  any
	Result any
	// Start is the virtual arrival instant, End the completion instant.
	Start time.Time
	End   time.Time
}

// Latency returns the virtual sojourn time of the job.
func (r StreamResult) Latency() time.Duration { return r.End.Sub(r.Start) }

// NewEngine builds a simulator.
func NewEngine(cfg Config) *Engine {
	if cfg.Costs == nil {
		panic("sim: Config.Costs is required")
	}
	if cfg.Events == nil {
		cfg.Events = event.NewRegistry()
	}
	if cfg.LP < 1 {
		cfg.LP = 1
	}
	if cfg.MaxLP > 0 && cfg.LP > cfg.MaxLP {
		cfg.LP = cfg.MaxLP
	}
	if cfg.Start.IsZero() {
		cfg.Start = clock.Epoch
	}
	e := &Engine{
		clk:    clock.NewVirtual(cfg.Start),
		events: cfg.Events,
		costs:  cfg.Costs,
		gauge:  cfg.Gauge,
		lp:     cfg.LP,
		maxLP:  cfg.MaxLP,
		start:  cfg.Start,
	}
	if len(cfg.Nodes) > 0 {
		e.nodes = make([]NodeSpec, len(cfg.Nodes))
		for i, n := range cfg.Nodes {
			if n.Threads < 1 {
				n.Threads = 1
			}
			if n.Link < 0 {
				n.Link = 0
			}
			e.nodes[i] = n
		}
		e.nodeBusy = make([]int, len(e.nodes))
		if e.lp > len(e.nodes) {
			e.lp = len(e.nodes)
		}
		for _, p := range cfg.Partitions {
			if p.Node < 0 || p.Node >= len(e.nodes) || p.Until <= p.From {
				continue
			}
			e.parts = append(e.parts, p)
		}
	}
	return e
}

// partitionedAt reports whether node is cut off at instant at, and if so
// when it heals — chaining overlapping or abutting windows, so a reply
// stranded behind back-to-back partitions waits them all out.
func (e *Engine) partitionedAt(node int, at time.Time) (bool, time.Time) {
	rel := at.Sub(e.partBase)
	cut := false
	heal := rel
	for changed := true; changed; {
		changed = false
		for _, p := range e.parts {
			if p.Node == node && p.From <= heal && heal < p.Until {
				cut = true
				heal = p.Until
				changed = true
			}
		}
	}
	if !cut {
		return false, time.Time{}
	}
	return true, e.partBase.Add(heal)
}

// nextHeal returns the earliest future partition end — the instant the
// admission capacity can grow again.
func (e *Engine) nextHeal(now time.Time) (time.Time, bool) {
	rel := now.Sub(e.partBase)
	var best time.Duration
	found := false
	for _, p := range e.parts {
		if p.Until > rel && (!found || p.Until < best) {
			best = p.Until
			found = true
		}
	}
	if !found {
		return time.Time{}, false
	}
	return e.partBase.Add(best), true
}

// Events returns the engine's registry.
func (e *Engine) Events() *event.Registry { return e.events }

// Clock returns the engine's virtual clock.
func (e *Engine) Clock() clock.Clock { return e.clk }

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.clk.Now() }

// Start returns the virtual time origin of the run.
func (e *Engine) StartTime() time.Time { return e.start }

// LP implements core.LPControl.
func (e *Engine) LP() int { return e.lp }

// SetLP implements core.LPControl; takes effect at the next scheduling
// point (running muscles are never interrupted, like the real pool). In
// multi-node mode it provisions or decommissions nodes: lowering it stops
// admitting work to the dropped nodes, but muscles already running there
// finish — the paper's thread semantics applied to machines.
func (e *Engine) SetLP(n int) {
	if n < 1 {
		n = 1
	}
	if e.maxLP > 0 && n > e.maxLP {
		n = e.maxLP
	}
	if len(e.nodes) > 0 && n > len(e.nodes) {
		n = len(e.nodes)
	}
	if n == e.lp {
		return
	}
	e.lp = n
	e.sample()
}

// NodeOccupancy returns the per-node busy worker counts (multi-node mode;
// empty otherwise). Useful for building core.NodeReport snapshots when a
// cluster arbiter is driven from a simulated machine park.
func (e *Engine) NodeOccupancy() []int {
	out := make([]int, len(e.nodeBusy))
	copy(out, e.nodeBusy)
	return out
}

// capacity is the admission bound: threads of the provisioned, currently
// reachable nodes in multi-node mode, the LP target otherwise.
func (e *Engine) capacity() int {
	if len(e.nodes) == 0 {
		return e.lp
	}
	now := e.clk.Now()
	c := 0
	for i := 0; i < e.lp; i++ {
		if cut, _ := e.partitionedAt(i, now); cut {
			continue
		}
		c += e.nodes[i].Threads
	}
	return c
}

func (e *Engine) sample() {
	if e.gauge != nil {
		e.gauge(e.clk.Now(), e.running.len(), e.lp)
	}
}

// Run executes node on param to completion and returns the result and the
// virtual makespan. An Engine is single-use per Run call; Run may be called
// again afterwards (state resets, the clock keeps advancing monotonically
// from the previous run unless the engine is rebuilt).
func (e *Engine) Run(node *skel.Node, param any) (any, time.Duration, error) {
	start := e.clk.Now()
	rs, err := e.RunStream(node, []Injection{{Param: param}})
	if err != nil {
		return nil, 0, err
	}
	return rs[0].Result, e.clk.Now().Sub(start), nil
}

// Injection is one parameter of a stream run: Param arrives At after the
// stream starts (zero = immediately).
type Injection struct {
	At    time.Duration
	Param any
}

// RunStream simulates a stream of inputs processed by node — the farm
// use-case: injections share the engine's capacity, later jobs benefit from
// whatever LP the controller (or caller) set earlier. Results are returned
// in injection order with per-job arrival/completion times.
func (e *Engine) RunStream(node *skel.Node, injections []Injection) ([]StreamResult, error) {
	prog, err := plan.Of(node)
	if err != nil {
		return nil, err
	}
	return e.RunStreamProgram(prog, injections)
}

// RunStreamProgram is RunStream over an explicitly compiled program,
// bypassing the node's plan cache. It is the seam for running a raw
// (unoptimized) program next to the cached optimized one — the
// conformance harness uses it to assert the optimizer changes nothing
// observable.
func (e *Engine) RunStreamProgram(prog *plan.Program, injections []Injection) (results []StreamResult, err error) {
	defer func() {
		// Muscle panics are converted by scall; a panic reaching here comes
		// from an event listener and aborts the run instead of the process.
		if rec := recover(); rec != nil {
			results = nil
			err = fmt.Errorf("sim: panic during simulated execution (listener?): %v", rec)
		}
	}()
	if len(injections) == 0 {
		return nil, nil
	}
	e.queue = e.queue[:0]
	e.running = runHeap{}
	e.err = nil
	e.completed = 0
	runStart := e.clk.Now()
	e.partBase = runStart

	e.results = make([]StreamResult, len(injections))
	e.arrivals = e.arrivals[:0]
	for i, inj := range injections {
		at := runStart.Add(inj.At)
		e.results[i] = StreamResult{Param: inj.Param, Start: at}
		e.arrivals = append(e.arrivals, arrival{at: at, param: inj.Param, idx: i})
	}
	sortArrivals(e.arrivals)
	e.nextArr = 0
	e.admitArrivals(prog)

	for e.completed < len(e.results) && e.err == nil {
		// Admit ready tasks while capacity remains.
		for e.running.len() < e.capacity() && len(e.queue) > 0 {
			t := e.queue[len(e.queue)-1]
			e.queue = e.queue[:len(e.queue)-1]
			e.step(t, e.takeSlot())
			if e.err != nil {
				break
			}
		}
		if e.completed == len(e.results) || e.err != nil {
			break
		}
		if e.running.len() == 0 {
			if len(e.queue) > 0 {
				// No capacity right now — but a partition heal may restore
				// some; jump the clock to the earliest one.
				if heal, ok := e.nextHeal(e.clk.Now()); ok {
					e.clk.Set(heal)
					continue
				}
				return nil, fmt.Errorf("sim: stalled with %d queued tasks and no capacity", len(e.queue))
			}
			// Idle: jump to the next arrival.
			if e.nextArr < len(e.arrivals) {
				e.clk.Set(e.arrivals[e.nextArr].at)
				e.admitArrivals(prog)
				continue
			}
			return nil, fmt.Errorf("sim: deadlock — nothing running, nothing queued, not done")
		}
		// If an arrival precedes the next completion, process it first.
		if e.nextArr < len(e.arrivals) && !e.arrivals[e.nextArr].at.After(e.running.peek().until) {
			e.clk.Set(e.arrivals[e.nextArr].at)
			e.admitArrivals(prog)
			continue
		}
		r := e.running.pop()
		if len(e.parts) > 0 {
			nd := e.slotNode[r.slot]
			if cut, heal := e.partitionedAt(nd, r.until); cut {
				// The muscle finished on a partitioned node: its reply is
				// stranded until the window heals, then pays one more Link
				// to ship home. The worker stays pinned the whole time.
				r.until = heal.Add(e.nodes[nd].Link)
				e.running.push(r)
				continue
			}
		}
		e.clk.Set(r.until)
		e.sample()
		r.fin.finish(r.task, r.slot)
		if e.err != nil {
			break
		}
		// The same virtual worker continues interpreting its task.
		e.step(r.task, r.slot)
	}
	if e.err != nil {
		return nil, e.err
	}
	return e.results, nil
}

// admitArrivals submits every injection whose arrival time has come.
func (e *Engine) admitArrivals(prog *plan.Program) {
	now := e.clk.Now()
	for e.nextArr < len(e.arrivals) && !e.arrivals[e.nextArr].at.After(now) {
		a := e.arrivals[e.nextArr]
		e.nextArr++
		if e.rootFrom != prog {
			e.rootFrom = prog
			e.rootProg = progFor(e, prog.Root(), event.NoParent)
		}
		root := e.newTask()
		root.param, root.rootIdx = a.param, a.idx
		root.push(e.rootProg...)
		e.submit(root)
	}
}

func sortArrivals(as []arrival) {
	// insertion sort: streams are small and usually already ordered.
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j].at.Before(as[j-1].at); j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}

func (e *Engine) submit(t *task) { e.queue = append(e.queue, t) }

func (e *Engine) takeSlot() int {
	var s int
	if n := len(e.freeSlots); n > 0 {
		s = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
	} else {
		s = e.nextSlot
		e.nextSlot++
	}
	if len(e.nodes) > 0 {
		// Pin the slot to the first provisioned, reachable node with a free
		// thread for its whole execution slice (capacity() admission, which
		// uses the same reachability predicate, guarantees one).
		now := e.clk.Now()
		nd := 0
		for i := 0; i < e.lp; i++ {
			if cut, _ := e.partitionedAt(i, now); cut {
				continue
			}
			if e.nodeBusy[i] < e.nodes[i].Threads {
				nd = i
				break
			}
		}
		for len(e.slotNode) <= s {
			e.slotNode = append(e.slotNode, 0)
		}
		e.slotNode[s] = nd
		e.nodeBusy[nd]++
	}
	return s
}

func (e *Engine) releaseSlot(s int) {
	if len(e.nodes) > 0 {
		e.nodeBusy[e.slotNode[s]]--
	}
	e.freeSlots = append(e.freeSlots, s)
}

// step interprets t until it blocks on a muscle, parks behind children, or
// completes. slot is the virtual worker identity used in events.
func (e *Engine) step(t *task, slot int) {
	for e.err == nil {
		if len(t.stack) == 0 {
			e.completeTask(t)
			e.releaseSlot(slot)
			return
		}
		in := t.pop()
		switch in := in.(type) {
		case *emitInstr:
			in.run(t, slot)
		case *instant:
			in.fn(t, slot)
		case *seqInstr:
			in.run(t, slot)
		case *seqBusy:
			e.park(t, slot, in.dur, in)
			return
		case *busy:
			e.park(t, slot, in.dur, in)
			return
		case *fusedEntry:
			if e.acquireFused(in.prog, in.parent).run(t, slot) {
				return // parked on a busy period mid-chain
			}
		case *fusedState:
			if in.run(t, slot) {
				return
			}
		case *spawn:
			if len(in.children) == 0 {
				continue // zero-cardinality split: continuation runs now
			}
			// Reserve queue capacity for the whole fan-out at once (the
			// optimizer's pre-sizing discipline: the cardinality is exact
			// here).
			if need := len(e.queue) + len(in.children); cap(e.queue) < need {
				nq := make([]*task, len(e.queue), need)
				copy(nq, e.queue)
				e.queue = nq
			}
			for _, c := range in.children {
				e.submit(c)
			}
			e.releaseSlot(slot)
			return
		default:
			e.err = fmt.Errorf("sim: unknown instruction %T", in)
			return
		}
	}
}

func (e *Engine) completeTask(t *task) {
	if t.parent == nil {
		e.results[t.rootIdx].Result = t.param
		e.results[t.rootIdx].End = e.clk.Now()
		e.completed++
		e.recycleTask(t)
		return
	}
	p := t.parent
	p.results[t.branch] = t.param
	p.pending--
	if p.pending == 0 {
		e.submit(p)
	}
	e.recycleTask(t)
}

// taskSlab is the freelist growth quantum: an empty freelist refills from
// one contiguous allocation of this many tasks.
const taskSlab = 32

// newTask draws a task from the engine's freelist (per-program arena
// discipline: the farm hot path reuses a handful of tasks across the whole
// stream instead of allocating one per activation).
func (e *Engine) newTask() *task {
	if n := len(e.taskFree); n > 0 {
		t := e.taskFree[n-1]
		e.taskFree = e.taskFree[:n-1]
		return t
	}
	slab := make([]task, taskSlab)
	for i := taskSlab - 1; i > 0; i-- {
		e.taskFree = append(e.taskFree, &slab[i])
	}
	return &slab[0]
}

// recycleTask returns a completed task to the freelist. Callers must be
// done with every field; the stack's backing array is retained.
func (e *Engine) recycleTask(t *task) {
	t.param = nil
	t.parent = nil
	t.branch = 0
	t.results = nil
	t.pending = 0
	t.rootIdx = 0
	t.stack = t.stack[:0]
	e.taskFree = append(e.taskFree, t)
}

func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// nextIndex allocates an activation index (shared protocol with exec).
func (e *Engine) nextIndex() int64 {
	i := e.idx
	e.idx++
	return i
}

// --- task & instruction plumbing ----------------------------------------------

type task struct {
	param   any
	stack   []sinstr
	parent  *task
	branch  int
	results []any
	pending int
	// rootIdx is the injection slot for parentless tasks.
	rootIdx int
}

func (t *task) push(in ...sinstr) { t.stack = append(t.stack, in...) }

func (t *task) pop() sinstr {
	in := t.stack[len(t.stack)-1]
	t.stack[len(t.stack)-1] = nil
	t.stack = t.stack[:len(t.stack)-1]
	return in
}

// sinstr is a simulated instruction: instant bookkeeping, a busy period, or
// a fork into children.
type sinstr interface{ simInstr() }

// instant runs immediately (events, stack manipulation).
type instant struct{ fn func(t *task, slot int) }

// busy occupies the virtual worker for dur, then runs fn.
type busy struct {
	dur time.Duration
	fn  func(t *task, slot int)
}

// finish implements finisher.
func (b *busy) finish(t *task, slot int) { b.fn(t, slot) }

// spawn parks the task behind children.
type spawn struct{ children []*task }

func (*instant) simInstr() {}
func (*busy) simInstr()    {}
func (*spawn) simInstr()   {}

// finisher is the continuation of a busy period, invoked when the virtual
// muscle completes. Typed (rather than a bound closure per busy period) so
// scheduling a muscle costs no extra allocation.
type finisher interface {
	finish(t *task, slot int)
}

// park schedules t's current busy period of duration d, finishing with fin.
// In multi-node mode the slot's node adds its round-trip link latency: the
// muscle's parameter ships to the node and its result ships back.
func (e *Engine) park(t *task, slot int, d time.Duration, fin finisher) {
	if d < 0 {
		d = 0
	}
	if len(e.nodes) > 0 {
		d += 2 * e.nodes[e.slotNode[slot]].Link
	}
	e.seq++
	e.running.push(run{
		until: e.clk.Now().Add(d),
		seq:   e.seq,
		task:  t,
		slot:  slot,
		fin:   fin,
	})
	e.sample()
}

type run struct {
	until time.Time
	seq   uint64
	task  *task
	slot  int
	fin   finisher
}

// runHeap orders running muscles by completion time, FIFO within equal
// times (deterministic).
type runHeap struct{ rs []run }

func (h *runHeap) len() int { return len(h.rs) }

func (h *runHeap) peek() run { return h.rs[0] }

func (h *runHeap) less(i, j int) bool {
	if !h.rs[i].until.Equal(h.rs[j].until) {
		return h.rs[i].until.Before(h.rs[j].until)
	}
	return h.rs[i].seq < h.rs[j].seq
}

func (h *runHeap) push(r run) {
	h.rs = append(h.rs, r)
	i := len(h.rs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.less(p, i) {
			break
		}
		h.rs[p], h.rs[i] = h.rs[i], h.rs[p]
		i = p
	}
}

func (h *runHeap) pop() run {
	top := h.rs[0]
	last := len(h.rs) - 1
	h.rs[0] = h.rs[last]
	h.rs = h.rs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.rs) && h.less(l, small) {
			small = l
		}
		if r < len(h.rs) && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.rs[i], h.rs[small] = h.rs[small], h.rs[i]
		i = small
	}
	return top
}
