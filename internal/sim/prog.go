package sim

import (
	"fmt"
	"time"

	"skandium/internal/event"
	"skandium/internal/exec"
	"skandium/internal/muscle"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// This file mirrors internal/exec's instruction semantics on the simulated
// substrate, emitting the identical event protocol so the tracker and the
// controller cannot tell the substrates apart. Differential tests in
// sim_test.go enforce the equivalence.

// sctx is one activation's event context (exec's actx counterpart). trace is
// usually the step's static precomputed trace; d&c recursion substitutes its
// dynamically grown one.
type sctx struct {
	e      *Engine
	step   *plan.Step
	trace  []*skel.Node
	idx    int64
	parent int64
}

func (a sctx) nd() *skel.Node { return a.step.Node() }

func (a sctx) emit(slot int, when event.When, where event.Where, param any, mod func(*event.Event)) any {
	reg := a.e.events
	nd := a.step.Node()
	// Fast path: when no listener can match this slot, skip Event
	// construction entirely (the simulator is single-threaded, so this is
	// purely an allocation/cost optimization — no behavioural change).
	if !reg.Wants(nd.Kind(), when, where) {
		return param
	}
	ev := event.Acquire()
	ev.Node = nd
	ev.Trace = a.trace
	ev.Index = a.idx
	ev.Parent = a.parent
	ev.When = when
	ev.Where = where
	ev.Param = param
	ev.Time = a.e.clk.Now()
	ev.Worker = slot
	if mod != nil {
		mod(ev)
	}
	p := reg.Emit(ev)
	event.Release(ev)
	return p
}

// scall invokes a muscle with panic recovery, mirroring exec.call.
func scall[T any](m *muscle.Muscle, trace []*skel.Node, fn func() (T, error)) (res T, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &exec.MuscleError{Muscle: m, Trace: trace, Err: fmt.Errorf("panic: %v", rec)}
		}
	}()
	res, err = fn()
	if err != nil {
		err = &exec.MuscleError{Muscle: m, Trace: trace, Err: err}
	}
	return res, err
}

// progFor returns the entry program of one activation of the skeleton at
// step: a single instant instruction that raises the begin event and unfolds
// the rest.
func progFor(e *Engine, step *plan.Step, parent int64) []sinstr {
	return []sinstr{entryFor(e, step, parent)}
}

func entryFor(e *Engine, step *plan.Step, parent int64) sinstr {
	// A fused serial chain is entered through its single micro-op
	// instruction; only this static-trace entry takes that path —
	// divide&conquer re-entry with a dynamically grown trace goes through
	// entryWithTrace and stays on the per-step instructions.
	if fp := step.Fused(); fp != nil {
		return &fusedEntry{e: e, prog: fp, parent: parent}
	}
	return entryWithTrace(e, step, parent, step.Trace())
}

// entryWithTrace is entryFor with an explicit trace — divide&conquer
// recursion re-enters sites with a longer, dynamically grown trace.
func entryWithTrace(e *Engine, step *plan.Step, parent int64, tr []*skel.Node) sinstr {
	switch step.Op() {
	case plan.OpExec:
		return seqEntry(e, step, parent, tr)
	case plan.OpWrap:
		return wrapperEntry(e, step, parent, tr, step.Child(0), 0, 0)
	case plan.OpStages:
		return pipeEntry(e, step, parent, tr)
	case plan.OpLoop:
		return whileEntry(e, step, parent, tr)
	case plan.OpSelect:
		return ifEntry(e, step, parent, tr)
	case plan.OpRepeat:
		return forEntry(e, step, parent, tr)
	case plan.OpFanOut:
		return mapEntry(e, step, parent, tr)
	case plan.OpFanFixed:
		return forkEntry(e, step, parent, tr)
	case plan.OpRecurse:
		return dacEntry(e, step, parent, tr, 0)
	default:
		panic(fmt.Sprintf("sim: unknown program operation %v", step.Op()))
	}
}

// begin opens the activation: allocates the index and emits Skeleton/Before.
func begin(e *Engine, step *plan.Step, parent int64, tr []*skel.Node, t *task, slot int) sctx {
	a := sctx{e: e, step: step, trace: tr, idx: e.nextIndex(), parent: parent}
	t.param = a.emit(slot, event.Before, event.Skeleton, t.param, nil)
	return a
}

// emitInstr raises one event with fixed coordinates. It is the typed form
// of the skeleton-end / nested-begin / nested-end brackets: every activation
// pushes several of these, so they carry their parameters as fields instead
// of closure captures (one allocation instead of two).
type emitInstr struct {
	a      sctx
	when   event.When
	where  event.Where
	branch int
	iter   int
}

func (*emitInstr) simInstr() {}

func (in *emitInstr) run(t *task, slot int) {
	a := in.a
	reg := a.e.events
	nd := a.step.Node()
	if !reg.Wants(nd.Kind(), in.when, in.where) {
		return
	}
	ev := event.Acquire()
	ev.Node = nd
	ev.Trace = a.trace
	ev.Index = a.idx
	ev.Parent = a.parent
	ev.When = in.when
	ev.Where = in.where
	ev.Param = t.param
	ev.Branch = in.branch
	ev.Iter = in.iter
	ev.Time = a.e.clk.Now()
	ev.Worker = slot
	t.param = reg.Emit(ev)
	event.Release(ev)
}

func skelEnd(a sctx) sinstr {
	return &emitInstr{a: a, when: event.After, where: event.Skeleton}
}

func nestedBegin(a sctx, branch, iter int) sinstr {
	return &emitInstr{a: a, when: event.Before, where: event.NestedSkel, branch: branch, iter: iter}
}

func nestedEnd(a sctx, branch, iter int) sinstr {
	return &emitInstr{a: a, when: event.After, where: event.NestedSkel, branch: branch, iter: iter}
}

// --- seq ------------------------------------------------------------------------

// seqInstr opens a seq activation; seqBusy is its execute muscle's busy
// period plus completion. Both are typed because seq dominates every
// workload's instruction count (every leaf is one).
type seqInstr struct {
	e      *Engine
	step   *plan.Step
	parent int64
	tr     []*skel.Node
}

func (*seqInstr) simInstr() {}

func (in *seqInstr) run(t *task, slot int) {
	a := begin(in.e, in.step, in.parent, in.tr, t, slot)
	fe := in.step.Exec()
	t.push(&seqBusy{dur: in.e.costs.Cost(fe, t.param), a: a, fe: fe})
}

type seqBusy struct {
	dur time.Duration
	a   sctx
	fe  *muscle.Muscle
}

func (*seqBusy) simInstr() {}

// finish implements finisher.
func (in *seqBusy) finish(t *task, slot int) {
	a := in.a
	res, err := scall(in.fe, a.trace, func() (any, error) { return in.fe.CallExecute(t.param) })
	if err != nil {
		a.e.fail(err)
		return
	}
	t.param = a.emit(slot, event.After, event.Skeleton, res, nil)
}

func seqEntry(e *Engine, step *plan.Step, parent int64, tr []*skel.Node) sinstr {
	return &seqInstr{e: e, step: step, parent: parent, tr: tr}
}

// --- wrappers: farm and the shared single-body bracket ---------------------------

// wrapperEntry brackets one nested evaluation with skeleton + nested events
// (farm, and the chosen branch of if via ifEntry).
func wrapperEntry(e *Engine, step *plan.Step, parent int64, tr []*skel.Node, sub *plan.Step, branch, iter int) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, step, parent, tr, t, slot)
		t.push(
			skelEnd(a),
			nestedEnd(a, branch, iter),
			entryFor(e, sub, a.idx),
			nestedBegin(a, branch, iter),
		)
	}}
}

// --- pipe / for -------------------------------------------------------------------

func pipeEntry(e *Engine, step *plan.Step, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, step, parent, tr, t, slot)
		stages := step.Children()
		t.push(skelEnd(a))
		for i := len(stages) - 1; i >= 0; i-- {
			t.push(
				nestedEnd(a, i, 0),
				entryFor(e, stages[i], a.idx),
				nestedBegin(a, i, 0),
			)
		}
	}}
}

func forEntry(e *Engine, step *plan.Step, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, step, parent, tr, t, slot)
		t.push(skelEnd(a))
		for i := step.N() - 1; i >= 0; i-- {
			t.push(
				nestedEnd(a, 0, i),
				entryFor(e, step.Child(0), a.idx),
				nestedBegin(a, 0, i),
			)
		}
	}}
}

// --- condition-bearing skeletons ---------------------------------------------------

// pushCond schedules one condition evaluation, then hands the verdict to
// andThen (still on the simulated worker).
func pushCond(a sctx, iter int, t *task, slot int, andThen func(t *task, slot int, c bool)) {
	fc := a.step.Cond()
	p := a.emit(slot, event.Before, event.Condition, t.param, func(ev *event.Event) { ev.Iter = iter })
	t.param = p
	t.push(&busy{dur: a.e.costs.Cost(fc, p), fn: func(t *task, slot int) {
		c, err := scall(fc, a.trace, func() (bool, error) { return fc.CallCondition(t.param) })
		if err != nil {
			a.e.fail(err)
			return
		}
		t.param = a.emit(slot, event.After, event.Condition, t.param, func(ev *event.Event) {
			ev.Cond, ev.Iter = c, iter
		})
		andThen(t, slot, c)
	}})
}

func whileEntry(e *Engine, step *plan.Step, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, step, parent, tr, t, slot)
		t.push(whileCheck(a, 0))
	}}
}

func whileCheck(a sctx, iter int) sinstr {
	return &instant{fn: func(t *task, slot int) {
		pushCond(a, iter, t, slot, func(t *task, slot int, c bool) {
			if !c {
				t.param = a.emit(slot, event.After, event.Skeleton, t.param, nil)
				return
			}
			t.push(
				whileCheck(a, iter+1),
				nestedEnd(a, 0, iter),
				entryFor(a.e, a.step.Child(0), a.idx),
				nestedBegin(a, 0, iter),
			)
		})
	}}
}

func ifEntry(e *Engine, step *plan.Step, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, step, parent, tr, t, slot)
		pushCond(a, 0, t, slot, func(t *task, slot int, c bool) {
			branch := 0
			if !c {
				branch = 1
			}
			t.push(
				skelEnd(a),
				nestedEnd(a, branch, 0),
				entryFor(e, step.Child(branch), a.idx),
				nestedBegin(a, branch, 0),
			)
		})
	}}
}

// --- split/merge skeletons ----------------------------------------------------------

// pushSplit schedules the split muscle and hands the sub-problems to andThen.
func pushSplit(a sctx, t *task, slot int, andThen func(t *task, slot int, parts []any)) {
	fs := a.step.Split()
	p := a.emit(slot, event.Before, event.Split, t.param, nil)
	t.param = p
	t.push(&busy{dur: a.e.costs.Cost(fs, p), fn: func(t *task, slot int) {
		parts, err := scall(fs, a.trace, func() ([]any, error) { return fs.CallSplit(t.param) })
		if err != nil {
			a.e.fail(err)
			return
		}
		after := a.emit(slot, event.After, event.Split, any(parts), func(ev *event.Event) {
			ev.Card = len(parts)
		})
		if repl, ok := after.([]any); ok {
			parts = repl
		}
		// Feed the optimizer's pre-sizing hint (nil on unoptimized
		// programs), mirroring the interpreter.
		a.step.CardHint().Record(len(parts))
		andThen(t, slot, parts)
	}})
}

// mergeCont is the continuation run when all children completed: the merge
// muscle bracketed by its events, then the skeleton end.
func mergeCont(a sctx) sinstr {
	return &instant{fn: func(t *task, slot int) {
		results := t.results
		t.results = nil
		p := a.emit(slot, event.Before, event.Merge, any(results), nil)
		rs, ok := p.([]any)
		if !ok {
			a.e.fail(fmt.Errorf("skandium: listener replaced merge input of %s with %T (want []any)",
				a.nd().Kind(), p))
			return
		}
		fm := a.step.Merge()
		t.push(&busy{dur: a.e.costs.Cost(fm, rs), fn: func(t *task, slot int) {
			merged, err := scall(fm, a.trace, func() (any, error) { return fm.CallMerge(rs) })
			if err != nil {
				a.e.fail(err)
				return
			}
			t.param = a.emit(slot, event.After, event.Merge, merged, nil)
			t.param = a.emit(slot, event.After, event.Skeleton, t.param, nil)
		}})
	}}
}

// forkOut parks t behind children running prog(branch) on parts[branch].
func forkOut(a sctx, t *task, parts []any, prog func(branch int) sinstr) {
	t.results = make([]any, len(parts))
	t.pending = len(parts)
	children := make([]*task, len(parts))
	for b, p := range parts {
		c := a.e.newTask()
		c.param, c.parent, c.branch = p, t, b
		c.push(
			nestedEnd(a, b, 0),
			prog(b),
			nestedBegin(a, b, 0),
		)
		children[b] = c
	}
	t.push(&spawn{children: children})
}

func mapEntry(e *Engine, step *plan.Step, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, step, parent, tr, t, slot)
		pushSplit(a, t, slot, func(t *task, slot int, parts []any) {
			t.push(mergeCont(a))
			forkOut(a, t, parts, func(int) sinstr {
				return entryFor(e, step.Child(0), a.idx)
			})
		})
	}}
}

func forkEntry(e *Engine, step *plan.Step, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, step, parent, tr, t, slot)
		pushSplit(a, t, slot, func(t *task, slot int, parts []any) {
			subs := step.Children()
			if len(parts) != len(subs) {
				e.fail(fmt.Errorf("skandium: fork split produced %d sub-problems for %d nested skeletons",
					len(parts), len(subs)))
				return
			}
			t.push(mergeCont(a))
			forkOut(a, t, parts, func(b int) sinstr {
				return entryFor(e, subs[b], a.idx)
			})
		})
	}}
}

func dacEntry(e *Engine, step *plan.Step, parent int64, tr []*skel.Node, depth int) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, step, parent, tr, t, slot)
		pushCond(a, depth, t, slot, func(t *task, slot int, c bool) {
			if !c {
				leaf := step.Child(0)
				leafEntry := entryFor(e, leaf, a.idx)
				if depth > 0 {
					leafEntry = entryWithTrace(e, leaf, a.idx, plan.ExtendTrace(tr, leaf.Node()))
				}
				t.push(
					skelEnd(a),
					nestedEnd(a, 0, depth),
					leafEntry,
					nestedBegin(a, 0, depth),
				)
				return
			}
			pushSplit(a, t, slot, func(t *task, slot int, parts []any) {
				t.push(mergeCont(a))
				branchTrace := plan.ExtendTrace(tr, step.Node())
				forkOut(a, t, parts, func(int) sinstr {
					return dacEntry(e, step, a.idx, branchTrace, depth+1)
				})
			})
		})
	}}
}
