package sim

import (
	"fmt"

	"skandium/internal/event"
	"skandium/internal/exec"
	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// This file mirrors internal/exec's instruction semantics on the simulated
// substrate, emitting the identical event protocol so the tracker and the
// controller cannot tell the substrates apart. Differential tests in
// sim_test.go enforce the equivalence.

// sctx is one activation's event context (exec's actx counterpart).
type sctx struct {
	e      *Engine
	nd     *skel.Node
	trace  []*skel.Node
	idx    int64
	parent int64
}

func (a sctx) emit(slot int, when event.When, where event.Where, param any, mod func(*event.Event)) any {
	ev := &event.Event{
		Node:   a.nd,
		Trace:  a.trace,
		Index:  a.idx,
		Parent: a.parent,
		When:   when,
		Where:  where,
		Param:  param,
		Time:   a.e.clk.Now(),
		Worker: slot,
	}
	if mod != nil {
		mod(ev)
	}
	return a.e.events.Emit(ev)
}

// scall invokes a muscle with panic recovery, mirroring exec.call.
func scall[T any](m *muscle.Muscle, trace []*skel.Node, fn func() (T, error)) (res T, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &exec.MuscleError{Muscle: m, Trace: trace, Err: fmt.Errorf("panic: %v", rec)}
		}
	}()
	res, err = fn()
	if err != nil {
		err = &exec.MuscleError{Muscle: m, Trace: trace, Err: err}
	}
	return res, err
}

func appendTrace(base []*skel.Node, nd *skel.Node) []*skel.Node {
	tr := make([]*skel.Node, len(base)+1)
	copy(tr, base)
	tr[len(base)] = nd
	return tr
}

// progFor returns the entry program of one activation of nd: a single
// instant instruction that raises the begin event and unfolds the rest.
func progFor(e *Engine, nd *skel.Node, parent int64, trace []*skel.Node) []sinstr {
	return []sinstr{entryFor(e, nd, parent, trace)}
}

func entryFor(e *Engine, nd *skel.Node, parent int64, trace []*skel.Node) sinstr {
	tr := appendTrace(trace, nd)
	switch nd.Kind() {
	case skel.Seq:
		return seqEntry(e, nd, parent, tr)
	case skel.Farm:
		return wrapperEntry(e, nd, parent, tr, nd.Children()[0], 0, 0)
	case skel.Pipe:
		return pipeEntry(e, nd, parent, tr)
	case skel.While:
		return whileEntry(e, nd, parent, tr)
	case skel.If:
		return ifEntry(e, nd, parent, tr)
	case skel.For:
		return forEntry(e, nd, parent, tr)
	case skel.Map:
		return mapEntry(e, nd, parent, tr)
	case skel.Fork:
		return forkEntry(e, nd, parent, tr)
	case skel.DaC:
		return dacEntry(e, nd, parent, tr, 0)
	default:
		panic(fmt.Sprintf("sim: unknown skeleton kind %v", nd.Kind()))
	}
}

// begin opens the activation: allocates the index and emits Skeleton/Before.
func begin(e *Engine, nd *skel.Node, parent int64, tr []*skel.Node, t *task, slot int) sctx {
	a := sctx{e: e, nd: nd, trace: tr, idx: e.nextIndex(), parent: parent}
	t.param = a.emit(slot, event.Before, event.Skeleton, t.param, nil)
	return a
}

func skelEnd(a sctx) sinstr {
	return &instant{fn: func(t *task, slot int) {
		t.param = a.emit(slot, event.After, event.Skeleton, t.param, nil)
	}}
}

func nestedBegin(a sctx, branch, iter int) sinstr {
	return &instant{fn: func(t *task, slot int) {
		t.param = a.emit(slot, event.Before, event.NestedSkel, t.param, func(ev *event.Event) {
			ev.Branch, ev.Iter = branch, iter
		})
	}}
}

func nestedEnd(a sctx, branch, iter int) sinstr {
	return &instant{fn: func(t *task, slot int) {
		t.param = a.emit(slot, event.After, event.NestedSkel, t.param, func(ev *event.Event) {
			ev.Branch, ev.Iter = branch, iter
		})
	}}
}

// --- seq ------------------------------------------------------------------------

func seqEntry(e *Engine, nd *skel.Node, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, nd, parent, tr, t, slot)
		fe := nd.Exec()
		t.push(&busy{dur: e.costs.Cost(fe, t.param), fn: func(t *task, slot int) {
			res, err := scall(fe, tr, func() (any, error) { return fe.CallExecute(t.param) })
			if err != nil {
				e.fail(err)
				return
			}
			t.param = a.emit(slot, event.After, event.Skeleton, res, nil)
		}})
	}}
}

// --- wrappers: farm and the shared single-body bracket ---------------------------

// wrapperEntry brackets one nested evaluation with skeleton + nested events
// (farm, and the chosen branch of if via ifEntry).
func wrapperEntry(e *Engine, nd *skel.Node, parent int64, tr []*skel.Node, sub *skel.Node, branch, iter int) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, nd, parent, tr, t, slot)
		t.push(
			skelEnd(a),
			nestedEnd(a, branch, iter),
			entryFor(e, sub, a.idx, tr),
			nestedBegin(a, branch, iter),
		)
	}}
}

// --- pipe / for -------------------------------------------------------------------

func pipeEntry(e *Engine, nd *skel.Node, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, nd, parent, tr, t, slot)
		stages := nd.Children()
		t.push(skelEnd(a))
		for i := len(stages) - 1; i >= 0; i-- {
			t.push(
				nestedEnd(a, i, 0),
				entryFor(e, stages[i], a.idx, tr),
				nestedBegin(a, i, 0),
			)
		}
	}}
}

func forEntry(e *Engine, nd *skel.Node, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, nd, parent, tr, t, slot)
		t.push(skelEnd(a))
		for i := nd.N() - 1; i >= 0; i-- {
			t.push(
				nestedEnd(a, 0, i),
				entryFor(e, nd.Children()[0], a.idx, tr),
				nestedBegin(a, 0, i),
			)
		}
	}}
}

// --- condition-bearing skeletons ---------------------------------------------------

// pushCond schedules one condition evaluation, then hands the verdict to
// andThen (still on the simulated worker).
func pushCond(a sctx, iter int, t *task, slot int, andThen func(t *task, slot int, c bool)) {
	fc := a.nd.Cond()
	p := a.emit(slot, event.Before, event.Condition, t.param, func(ev *event.Event) { ev.Iter = iter })
	t.param = p
	t.push(&busy{dur: a.e.costs.Cost(fc, p), fn: func(t *task, slot int) {
		c, err := scall(fc, a.trace, func() (bool, error) { return fc.CallCondition(t.param) })
		if err != nil {
			a.e.fail(err)
			return
		}
		t.param = a.emit(slot, event.After, event.Condition, t.param, func(ev *event.Event) {
			ev.Cond, ev.Iter = c, iter
		})
		andThen(t, slot, c)
	}})
}

func whileEntry(e *Engine, nd *skel.Node, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, nd, parent, tr, t, slot)
		t.push(whileCheck(a, 0))
	}}
}

func whileCheck(a sctx, iter int) sinstr {
	return &instant{fn: func(t *task, slot int) {
		pushCond(a, iter, t, slot, func(t *task, slot int, c bool) {
			if !c {
				t.param = a.emit(slot, event.After, event.Skeleton, t.param, nil)
				return
			}
			t.push(
				whileCheck(a, iter+1),
				nestedEnd(a, 0, iter),
				entryFor(a.e, a.nd.Children()[0], a.idx, a.trace),
				nestedBegin(a, 0, iter),
			)
		})
	}}
}

func ifEntry(e *Engine, nd *skel.Node, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, nd, parent, tr, t, slot)
		pushCond(a, 0, t, slot, func(t *task, slot int, c bool) {
			branch := 0
			if !c {
				branch = 1
			}
			t.push(
				skelEnd(a),
				nestedEnd(a, branch, 0),
				entryFor(e, nd.Children()[branch], a.idx, tr),
				nestedBegin(a, branch, 0),
			)
		})
	}}
}

// --- split/merge skeletons ----------------------------------------------------------

// pushSplit schedules the split muscle and hands the sub-problems to andThen.
func pushSplit(a sctx, t *task, slot int, andThen func(t *task, slot int, parts []any)) {
	fs := a.nd.Split()
	p := a.emit(slot, event.Before, event.Split, t.param, nil)
	t.param = p
	t.push(&busy{dur: a.e.costs.Cost(fs, p), fn: func(t *task, slot int) {
		parts, err := scall(fs, a.trace, func() ([]any, error) { return fs.CallSplit(t.param) })
		if err != nil {
			a.e.fail(err)
			return
		}
		after := a.emit(slot, event.After, event.Split, any(parts), func(ev *event.Event) {
			ev.Card = len(parts)
		})
		if repl, ok := after.([]any); ok {
			parts = repl
		}
		andThen(t, slot, parts)
	}})
}

// mergeCont is the continuation run when all children completed: the merge
// muscle bracketed by its events, then the skeleton end.
func mergeCont(a sctx) sinstr {
	return &instant{fn: func(t *task, slot int) {
		results := t.results
		t.results = nil
		p := a.emit(slot, event.Before, event.Merge, any(results), nil)
		rs, ok := p.([]any)
		if !ok {
			a.e.fail(fmt.Errorf("skandium: listener replaced merge input of %s with %T (want []any)",
				a.nd.Kind(), p))
			return
		}
		fm := a.nd.Merge()
		t.push(&busy{dur: a.e.costs.Cost(fm, rs), fn: func(t *task, slot int) {
			merged, err := scall(fm, a.trace, func() (any, error) { return fm.CallMerge(rs) })
			if err != nil {
				a.e.fail(err)
				return
			}
			t.param = a.emit(slot, event.After, event.Merge, merged, nil)
			t.param = a.emit(slot, event.After, event.Skeleton, t.param, nil)
		}})
	}}
}

// forkOut parks t behind children running prog(branch) on parts[branch].
func forkOut(a sctx, t *task, parts []any, prog func(branch int) sinstr) {
	t.results = make([]any, len(parts))
	t.pending = len(parts)
	children := make([]*task, len(parts))
	for b, p := range parts {
		children[b] = &task{
			param:  p,
			parent: t,
			branch: b,
			stack: []sinstr{
				nestedEnd(a, b, 0),
				prog(b),
				nestedBegin(a, b, 0),
			},
		}
	}
	t.push(&spawn{children: children})
}

func mapEntry(e *Engine, nd *skel.Node, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, nd, parent, tr, t, slot)
		pushSplit(a, t, slot, func(t *task, slot int, parts []any) {
			t.push(mergeCont(a))
			forkOut(a, t, parts, func(int) sinstr {
				return entryFor(e, nd.Children()[0], a.idx, tr)
			})
		})
	}}
}

func forkEntry(e *Engine, nd *skel.Node, parent int64, tr []*skel.Node) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, nd, parent, tr, t, slot)
		pushSplit(a, t, slot, func(t *task, slot int, parts []any) {
			subs := nd.Children()
			if len(parts) != len(subs) {
				e.fail(fmt.Errorf("skandium: fork split produced %d sub-problems for %d nested skeletons",
					len(parts), len(subs)))
				return
			}
			t.push(mergeCont(a))
			forkOut(a, t, parts, func(b int) sinstr {
				return entryFor(e, subs[b], a.idx, tr)
			})
		})
	}}
}

func dacEntry(e *Engine, nd *skel.Node, parent int64, tr []*skel.Node, depth int) sinstr {
	return &instant{fn: func(t *task, slot int) {
		a := begin(e, nd, parent, tr, t, slot)
		pushCond(a, depth, t, slot, func(t *task, slot int, c bool) {
			if !c {
				t.push(
					skelEnd(a),
					nestedEnd(a, 0, depth),
					entryFor(e, nd.Children()[0], a.idx, tr),
					nestedBegin(a, 0, depth),
				)
				return
			}
			pushSplit(a, t, slot, func(t *task, slot int, parts []any) {
				t.push(mergeCont(a))
				forkOut(a, t, parts, func(int) sinstr {
					return dacEntry(e, nd, a.idx, appendTrace(tr, nd), depth+1)
				})
			})
		})
	}}
}
