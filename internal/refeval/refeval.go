// Package refeval is a reference evaluator for skeleton programs: a direct
// recursive interpreter with no tasks, no pool, no events and no
// parallelism. It defines the functional semantics of the algebra in ~100
// lines and serves as the oracle for differential testing — the task-pool
// engine (internal/exec) and the simulator (internal/sim) must compute
// exactly what this evaluator computes, for every program and input.
package refeval

import (
	"fmt"

	"skandium/internal/skel"
)

// MaxWhileIterations bounds while/d&c loops so buggy conditions surface as
// errors instead of hangs in tests.
const MaxWhileIterations = 1_000_000

// Eval computes the result of a skeleton program sequentially.
func Eval(node *skel.Node, param any) (any, error) {
	if err := node.Validate(); err != nil {
		return nil, err
	}
	return eval(node, param, 0)
}

func eval(node *skel.Node, param any, depth int) (any, error) {
	switch node.Kind() {
	case skel.Seq:
		return node.Exec().CallExecute(param)
	case skel.Farm:
		return eval(node.Children()[0], param, 0)
	case skel.Pipe:
		var err error
		for _, stage := range node.Children() {
			param, err = eval(stage, param, 0)
			if err != nil {
				return nil, err
			}
		}
		return param, nil
	case skel.For:
		var err error
		for i := 0; i < node.N(); i++ {
			param, err = eval(node.Children()[0], param, 0)
			if err != nil {
				return nil, err
			}
		}
		return param, nil
	case skel.While:
		for i := 0; ; i++ {
			if i > MaxWhileIterations {
				return nil, fmt.Errorf("refeval: while exceeded %d iterations", MaxWhileIterations)
			}
			c, err := node.Cond().CallCondition(param)
			if err != nil {
				return nil, err
			}
			if !c {
				return param, nil
			}
			param, err = eval(node.Children()[0], param, 0)
			if err != nil {
				return nil, err
			}
		}
	case skel.If:
		c, err := node.Cond().CallCondition(param)
		if err != nil {
			return nil, err
		}
		branch := 0
		if !c {
			branch = 1
		}
		return eval(node.Children()[branch], param, 0)
	case skel.Map:
		parts, err := node.Split().CallSplit(param)
		if err != nil {
			return nil, err
		}
		results := make([]any, len(parts))
		for i, p := range parts {
			results[i], err = eval(node.Children()[0], p, 0)
			if err != nil {
				return nil, err
			}
		}
		return node.Merge().CallMerge(results)
	case skel.Fork:
		parts, err := node.Split().CallSplit(param)
		if err != nil {
			return nil, err
		}
		subs := node.Children()
		if len(parts) != len(subs) {
			return nil, fmt.Errorf("refeval: fork split produced %d sub-problems for %d nested skeletons",
				len(parts), len(subs))
		}
		results := make([]any, len(parts))
		for i, p := range parts {
			results[i], err = eval(subs[i], p, 0)
			if err != nil {
				return nil, err
			}
		}
		return node.Merge().CallMerge(results)
	case skel.DaC:
		if depth > MaxWhileIterations {
			return nil, fmt.Errorf("refeval: d&c recursion exceeded %d levels", MaxWhileIterations)
		}
		c, err := node.Cond().CallCondition(param)
		if err != nil {
			return nil, err
		}
		if !c {
			return eval(node.Children()[0], param, 0)
		}
		parts, err := node.Split().CallSplit(param)
		if err != nil {
			return nil, err
		}
		results := make([]any, len(parts))
		for i, p := range parts {
			results[i], err = eval(node, p, depth+1)
			if err != nil {
				return nil, err
			}
		}
		return node.Merge().CallMerge(results)
	default:
		return nil, fmt.Errorf("refeval: unknown kind %v", node.Kind())
	}
}
