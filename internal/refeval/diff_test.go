package refeval

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/exec"
	"skandium/internal/muscle"
	"skandium/internal/sim"
	"skandium/internal/skel"
)

// --- generator of random, terminating int programs --------------------------------
//
// Every generated muscle maps non-negative ints to non-negative ints and is
// non-decreasing (f(n) >= n), which makes while loops with a leading +1
// stage strictly increasing (termination) and keeps d&c recursion on
// halvings well-founded.

type progGen struct {
	rng *rand.Rand
}

func (g *progGen) exec() *skel.Node {
	switch g.rng.Intn(3) {
	case 0:
		k := g.rng.Intn(5)
		return skel.NewSeq(muscle.NewExecute(fmt.Sprintf("add%d", k), func(p any) (any, error) {
			return p.(int) + k, nil
		}))
	case 1:
		return skel.NewSeq(muscle.NewExecute("double", func(p any) (any, error) {
			return p.(int) * 2, nil
		}))
	default:
		return skel.NewSeq(muscle.NewExecute("id", func(p any) (any, error) {
			return p, nil
		}))
	}
}

// splitSum splits n into parts that sum to n (2 or 3 parts).
func (g *progGen) splitSum() *muscle.Muscle {
	k := 2 + g.rng.Intn(2)
	return muscle.NewSplit(fmt.Sprintf("split%d", k), func(p any) ([]any, error) {
		n := p.(int)
		out := make([]any, k)
		rest := n
		for i := 0; i < k-1; i++ {
			part := rest / (k - i)
			out[i] = part
			rest -= part
		}
		out[k-1] = rest
		return out, nil
	})
}

func mergeSum() *muscle.Muscle {
	return muscle.NewMerge("sum", func(ps []any) (any, error) {
		s := 0
		for _, p := range ps {
			s += p.(int)
		}
		return s, nil
	})
}

// gen produces a random skeleton; every subtree maps n -> >= n.
func (g *progGen) gen(depth int) *skel.Node {
	if depth <= 0 {
		return g.exec()
	}
	switch g.rng.Intn(8) {
	case 0:
		return g.exec()
	case 1:
		return skel.NewFarm(g.gen(depth - 1))
	case 2:
		return skel.NewPipe(g.gen(depth-1), g.gen(depth-1))
	case 3:
		return skel.NewFor(1+g.rng.Intn(3), g.gen(depth-1))
	case 4:
		bound := 20 + g.rng.Intn(100)
		fc := muscle.NewCondition(fmt.Sprintf("lt%d", bound), func(p any) (bool, error) {
			return p.(int) < bound, nil
		})
		inc := skel.NewSeq(muscle.NewExecute("inc", func(p any) (any, error) {
			return p.(int) + 1, nil
		}))
		return skel.NewWhile(fc, skel.NewPipe(inc, g.gen(depth-1)))
	case 5:
		threshold := g.rng.Intn(10)
		fc := muscle.NewCondition(fmt.Sprintf("gt%d", threshold), func(p any) (bool, error) {
			return p.(int) > threshold, nil
		})
		return skel.NewIf(fc, g.gen(depth-1), g.gen(depth-1))
	case 6:
		return skel.NewMap(g.splitSum(), g.gen(depth-1), mergeSum())
	default:
		threshold := 4 + g.rng.Intn(20)
		fc := muscle.NewCondition(fmt.Sprintf("big%d", threshold), func(p any) (bool, error) {
			return p.(int) > threshold, nil
		})
		fs := muscle.NewSplit("halve", func(p any) ([]any, error) {
			n := p.(int)
			return []any{n / 2, n - n/2}, nil
		})
		return skel.NewDaC(fc, fs, g.gen(depth-1), mergeSum())
	}
}

// unitCosts declares 1ms for every muscle in the tree.
func unitCosts() sim.CostModel {
	return sim.CostFunc(func(*muscle.Muscle, any) time.Duration { return time.Millisecond })
}

// TestEngineMatchesReference: the task-pool engine at several LPs computes
// exactly the reference result for random programs and inputs.
func TestEngineMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(seed))}
		prog := g.gen(3)
		input := g.rng.Intn(50)
		want, err := Eval(prog, input)
		if err != nil {
			t.Fatalf("seed %d (%s): reference: %v", seed, prog, err)
		}
		for _, lp := range []int{1, 2, 4} {
			pool := exec.NewPool(clock.System, lp, 0)
			root := exec.NewRoot(pool, nil, nil)
			got, err := root.Start(prog, input).Get()
			pool.Close()
			if err != nil {
				t.Fatalf("seed %d lp %d (%s): engine: %v", seed, lp, prog, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d lp %d (%s) input %d: engine %v != reference %v",
					seed, lp, prog, input, got, want)
			}
		}
	}
}

// TestSimMatchesReference: the simulator substrate computes the reference
// result too.
func TestSimMatchesReference(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(seed))}
		prog := g.gen(3)
		input := g.rng.Intn(50)
		want, err := Eval(prog, input)
		if err != nil {
			t.Fatalf("seed %d (%s): reference: %v", seed, prog, err)
		}
		for _, lp := range []int{1, 3} {
			eng := sim.NewEngine(sim.Config{Costs: unitCosts(), LP: lp})
			got, _, err := eng.Run(prog, input)
			if err != nil {
				t.Fatalf("seed %d lp %d (%s): sim: %v", seed, lp, prog, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d lp %d (%s) input %d: sim %v != reference %v",
					seed, lp, prog, input, got, want)
			}
		}
	}
}

// TestSimLPMakespanMonotone: on random programs, more simulated threads
// never lengthen the virtual makespan (the paper's assumed "non-strictly
// increasing speedup"), within the tolerance of LIFO scheduling order.
func TestSimLPMakespanMonotone(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(seed))}
		prog := g.gen(2)
		input := g.rng.Intn(30)
		var prev time.Duration = -1
		lp1 := time.Duration(0)
		for _, lp := range []int{1, 2, 4, 8, 16} {
			eng := sim.NewEngine(sim.Config{Costs: unitCosts(), LP: lp})
			_, makespan, err := eng.Run(prog, input)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if lp == 1 {
				lp1 = makespan
			}
			// Greedy LIFO scheduling is not perfectly monotone in theory;
			// unit costs make it monotone in practice. Tolerate nothing.
			if prev >= 0 && makespan > prev {
				t.Fatalf("seed %d (%s): makespan grew from %v to %v at lp %d",
					seed, prog, prev, makespan, lp)
			}
			prev = makespan
		}
		if prev > lp1 {
			t.Fatalf("seed %d: lp16 %v worse than lp1 %v", seed, prev, lp1)
		}
	}
}

// TestOptimizePreservesSemantics: the rewrite pass (normalization and seq
// fusion) must not change results — checked against the reference
// evaluator on random programs, and against the engine on the optimized
// tree.
func TestOptimizePreservesSemantics(t *testing.T) {
	for seed := int64(300); seed < 340; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(seed))}
		prog := g.gen(3)
		input := g.rng.Intn(50)
		want, err := Eval(prog, input)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, opts := range []skel.OptimizeOptions{{}, {FuseSeqPipes: true}} {
			opt := skel.Optimize(prog, opts)
			if err := opt.Validate(); err != nil {
				t.Fatalf("seed %d: optimized tree invalid: %v", seed, err)
			}
			got, err := Eval(opt, input)
			if err != nil {
				t.Fatalf("seed %d (fuse=%v): %v", seed, opts.FuseSeqPipes, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d (fuse=%v): optimized %v != original %v\noriginal:  %s\noptimized: %s",
					seed, opts.FuseSeqPipes, got, want, prog, opt)
			}
			// And through the real engine.
			pool := exec.NewPool(clock.System, 2, 0)
			engGot, err := exec.NewRoot(pool, nil, nil).Start(opt, input).Get()
			pool.Close()
			if err != nil {
				t.Fatalf("seed %d: engine on optimized: %v", seed, err)
			}
			if !reflect.DeepEqual(engGot, want) {
				t.Fatalf("seed %d: engine %v != reference %v", seed, engGot, want)
			}
		}
	}
}

// TestReferenceEvaluatorBasics pins the oracle itself.
func TestReferenceEvaluatorBasics(t *testing.T) {
	double := muscle.NewExecute("double", func(p any) (any, error) { return p.(int) * 2, nil })
	nd := skel.NewFor(3, skel.NewSeq(double))
	got, err := Eval(nd, 1)
	if err != nil || got != 8 {
		t.Fatalf("got %v/%v", got, err)
	}
}

// TestReferenceWhileGuard: a non-terminating while is reported, not hung.
func TestReferenceWhileGuard(t *testing.T) {
	always := muscle.NewCondition("true", func(p any) (bool, error) { return true, nil })
	id := muscle.NewExecute("id", func(p any) (any, error) { return p, nil })
	nd := skel.NewWhile(always, skel.NewSeq(id))
	if _, err := Eval(nd, 0); err == nil {
		t.Fatal("infinite while not caught")
	}
}
