package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"skandium/internal/clock"
)

// TestExplicitPaperPolicyMatchesDefault: Config{Policy: PaperPolicy{...}}
// and the legacy Config{Increase, Decrease} selection drive the controller
// to identical decision logs on the Fig. 1 snapshot.
func TestExplicitPaperPolicyMatchesDefault(t *testing.T) {
	run := func(cfg Config) []Decision {
		s := newFig1Setup()
		s.replayUntil70()
		lever := &fakeLever{lp: 2}
		ctl := NewController(cfg, s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
		ctl.SetStart(clock.Epoch)
		ctl.Analyze(clock.Epoch.Add(u(70)))
		ctl.Analyze(clock.Epoch.Add(u(80)))
		return ctl.Decisions()
	}
	for _, tc := range []struct {
		inc IncreasePolicy
		dec DecreasePolicy
	}{
		{IncreaseOptimal, DecreaseHalve},
		{IncreaseMinimal, DecreaseHalve},
		{IncreaseOptimal, DecreaseNone},
		{IncreaseOptimal, DecreaseExact},
	} {
		legacy := run(Config{WCTGoal: u(100), Increase: tc.inc, Decrease: tc.dec})
		viaPolicy := run(Config{WCTGoal: u(100), Policy: PaperPolicy{Increase: tc.inc, Decrease: tc.dec}})
		if !reflect.DeepEqual(legacy, viaPolicy) {
			t.Fatalf("inc=%d dec=%d: decisions diverge\ndefault:   %v\nvia Policy: %v",
				tc.inc, tc.dec, legacy, viaPolicy)
		}
	}
}

// TestDecreaseHoldSequenceClamp is the regression test for the virtual-time
// hold bug: with AnalysisInterval zero the virtual clock can jump straight
// past the hold window in one event batch, so a wall-time-only hold damps
// nothing — the very first analysis after the increase could halve. The
// hold is now clamped by decision sequence too: the first completed
// analysis after an increase is always damped, however far the clock
// jumped; only the next one may decrease.
func TestDecreaseHoldSequenceClamp(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 2}
	ctl := NewController(Config{WCTGoal: u(100), Increase: IncreaseOptimal,
		DecreaseHold: u(50)},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	// Increase at t=70 (2 -> 3).
	ctl.Analyze(clock.Epoch.Add(u(70)))
	if lever.LP() != 3 {
		t.Fatalf("LP = %d, want 3", lever.LP())
	}
	// Manual raise plus a loosened goal make a halving attractive.
	lever.SetLP(8)
	ctl.cfg.WCTGoal = u(500)
	// The clock jumps past the whole hold window (70+50=120) in one go:
	// the first analysis since the increase still must not decrease.
	if !ctl.Analyze(clock.Epoch.Add(u(200))) {
		t.Fatal("analysis did not run")
	}
	if lever.LP() != 8 {
		t.Fatalf("hold skipped by clock jump: LP = %d, want 8", lever.LP())
	}
	// The second analysis — even at the same virtual instant — has one
	// damped analysis behind it and the wall window expired: it may halve.
	ctl.Analyze(clock.Epoch.Add(u(200)))
	if lever.LP() != 4 {
		t.Fatalf("decrease after damped analysis did not halve: LP = %d, want 4", lever.LP())
	}
}

// synthPred builds a deterministic analytic prediction: completion is
// max(span, work/lp) from now.
func synthPred(work, span time.Duration, now time.Time) *Prediction {
	if span <= 0 {
		span = time.Millisecond
	}
	limited := func(lp int) time.Time {
		if lp < 1 {
			lp = 1
		}
		d := work / time.Duration(lp)
		if d < span {
			d = span
		}
		return now.Add(d)
	}
	opt := int((work + span - 1) / span)
	if opt < 1 {
		opt = 1
	}
	return &Prediction{
		LimitedEnd: limited,
		BestEnd:    now.Add(span),
		OptimalLP:  opt,
		MinLP: func(deadline time.Time, ceil int) (int, bool) {
			for lp := 1; lp <= ceil; lp++ {
				if !limited(lp).After(deadline) {
					return lp, true
				}
			}
			return 0, false
		},
	}
}

// driveProposals runs a policy through a fixed synthetic scenario and
// returns its full proposal stream plus the LP trajectory it produced.
func driveProposals(p Policy, steps int) []Proposal {
	const maxLP = 16
	cur := 1
	start := clock.Epoch
	var out []Proposal
	for i := 0; i < steps; i++ {
		now := start.Add(time.Duration(i) * 20 * time.Millisecond)
		work := time.Duration(1500-22*i) * time.Millisecond
		if work < 40*time.Millisecond {
			work = 40 * time.Millisecond
		}
		pred := synthPred(work, 80*time.Millisecond, now)
		prop := p.Observe(pred, Actuation{
			CurLP: cur, MaxLP: maxLP,
			Goal: 600 * time.Millisecond, Start: start, Now: now,
		})
		out = append(out, prop)
		if prop.LP >= 1 {
			cur = prop.LP
			if cur > maxLP {
				cur = maxLP
			}
		}
	}
	return out
}

// TestPolicyProposalStreamsDeterministic: every registered policy produces
// an identical proposal stream when rebuilt with the same seed and driven
// through the same scenario — the property the tournament's reproducible
// league tables rest on. Run under -race in CI.
func TestPolicyProposalStreamsDeterministic(t *testing.T) {
	for _, name := range Policies() {
		a, err := NewPolicy(name, 7)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		b, err := NewPolicy(name, 7)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		pa := driveProposals(a, 60)
		pb := driveProposals(b, 60)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("policy %q: proposal streams diverge for equal seeds", name)
		}
		for i, pr := range pa {
			if pr.LP > 16 {
				t.Fatalf("policy %q step %d proposes LP %d above the cap", name, i, pr.LP)
			}
		}
	}
}

// TestClonePolicyIndependence: ClonePolicy hands each new controller an
// instance safe to drive concurrently — stateful policies (Cloner) become
// fresh replicas behaving exactly like a newly built policy on the same
// seed, even after the original has accumulated state; stateless ones pass
// through unchanged.
func TestClonePolicyIndependence(t *testing.T) {
	if ClonePolicy(nil) != nil {
		t.Fatal("ClonePolicy(nil) is not nil")
	}
	for _, name := range Policies() {
		orig, err := NewPolicy(name, 11)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		_, stateful := orig.(Cloner)
		if clone := ClonePolicy(orig); stateful {
			if clone == orig {
				t.Fatalf("stateful policy %q: clone is the original instance", name)
			}
		} else if clone != orig {
			t.Fatalf("stateless policy %q was replaced by ClonePolicy", name)
		}
		// Drift the original's state, then clone: the clone must still
		// replay the proposal stream of a fresh instance on the same seed.
		driveProposals(orig, 40)
		fresh, _ := NewPolicy(name, 11)
		got := driveProposals(ClonePolicy(orig), 60)
		want := driveProposals(fresh, 60)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("policy %q: clone after use diverges from a fresh instance", name)
		}
	}
}

// TestHeldProposalsDoNotUndercutDemand: during the decrease-damping window
// no registered policy may publish a Demand below the held LP — the budget
// arbiter would shrink the grant under the hold, re-opening the decrease
// the controller is damping.
func TestHeldProposalsDoNotUndercutDemand(t *testing.T) {
	start := clock.Epoch
	// Generous slack at LP 8: every policy wants to come down.
	pred := synthPred(160*time.Millisecond, 20*time.Millisecond, start)
	act := Actuation{CurLP: 8, MaxLP: 16, Goal: time.Second,
		Start: start, Now: start, Held: true}
	for _, name := range Policies() {
		p, err := NewPolicy(name, 5)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		for i := 0; i < 50; i++ { // enough rounds to cover bandit exploration
			prop := p.Observe(pred, act)
			if prop.Demand > 0 && prop.Demand < act.CurLP {
				t.Fatalf("policy %q published Demand %d below the held LP %d",
					name, prop.Demand, act.CurLP)
			}
		}
	}
}

// TestControllerClampsHeldDemand: even a policy that violates the Demand
// contract (publishing a wish below the held level) cannot leak it into the
// controller's published Demand during the damping window.
func TestControllerClampsHeldDemand(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 2}
	ctl := NewController(Config{WCTGoal: u(100), DecreaseHold: u(50),
		Policy: undercutPolicy{}},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	// First analysis: the rogue policy raises 2 -> 3, opening the hold
	// window. Second analysis, inside the window: the policy holds LP but
	// wishes for 1 via Demand — the controller must publish the held level,
	// not the undercut.
	ctl.Analyze(clock.Epoch.Add(u(70)))
	if lever.LP() != 3 {
		t.Fatalf("LP = %d, want 3", lever.LP())
	}
	if !ctl.Analyze(clock.Epoch.Add(u(80))) {
		t.Fatal("held analysis did not run")
	}
	if d := ctl.Demand(); d.DesiredLP != 3 {
		t.Fatalf("held demand = %d, want clamped to the held LP 3", d.DesiredLP)
	}
}

// undercutPolicy raises LP once and then keeps wishing for 1 worker via
// Demand — a contract-violating stateless policy.
type undercutPolicy struct{ PaperContract }

func (undercutPolicy) Name() string { return "undercut" }
func (undercutPolicy) Observe(pred *Prediction, act Actuation) Proposal {
	if act.CurLP < 3 {
		return Proposal{LP: 3, Demand: 1, Reason: "raise, wish less"}
	}
	return Proposal{LP: act.CurLP, Demand: 1}
}

// TestPolicyRegistry: the empty name is the paper default, names round-trip
// through Name(), and unknown names fail with the catalogue.
func TestPolicyRegistry(t *testing.T) {
	p, err := NewPolicy("", 1)
	if err != nil || p.Name() != "paper" {
		t.Fatalf("NewPolicy(\"\") = %v, %v; want the paper default", p, err)
	}
	for _, name := range Policies() {
		p, err := NewPolicy(name, 3)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("no-such-policy", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestHillClimbReturnsToBestSeen: after observing a feasible LP, a later
// miss jumps straight back to it instead of stepping blindly.
func TestHillClimbReturnsToBestSeen(t *testing.T) {
	h := NewHillClimb(1)
	start := clock.Epoch
	// Feasible at LP 6 (work 400ms / 6 < goal 100ms? no — make it so):
	// work 480ms, span 80ms, goal 100ms: LP 6 gives 80ms <= 100ms. Observe
	// at LP 6 with slack records 6 as best-seen.
	pred := synthPred(480*time.Millisecond, 80*time.Millisecond, start)
	h.Observe(pred, Actuation{CurLP: 6, MaxLP: 16, Goal: 100 * time.Millisecond, Start: start, Now: start})
	// Now at LP 1 the goal is missed: the climber should return to 6.
	prop := h.Observe(pred, Actuation{CurLP: 1, MaxLP: 16, Goal: 100 * time.Millisecond, Start: start, Now: start})
	if prop.LP > 6 {
		t.Fatalf("hillclimb overshot its best-seen LP: proposed %d", prop.LP)
	}
	if prop.LP <= 1 {
		t.Fatalf("hillclimb did not climb on a miss: proposed %d", prop.LP)
	}
}

// TestCostAwarePrefersCheapestSufficientLP: when several LPs meet the goal,
// the cost model picks the cheapest-by-LP·time one.
func TestCostAwarePrefersCheapestSufficientLP(t *testing.T) {
	p := NewCostAware()
	start := clock.Epoch
	// work 1600ms, span 100ms, goal 200ms: LP 8 meets the deadline exactly
	// (200ms); LP 16 is no faster per the span floor but costs double the
	// workers for half the time — the model ties and keeps the smaller LP.
	pred := synthPred(1600*time.Millisecond, 100*time.Millisecond, start)
	prop := p.Observe(pred, Actuation{CurLP: 1, MaxLP: 16, Goal: 200 * time.Millisecond, Start: start, Now: start})
	if prop.LP != 8 {
		t.Fatalf("costaware proposed %d, want 8", prop.LP)
	}
}

// legacyShrinkToFit is the pre-refactor shrink algorithm, transcribed
// verbatim from arbiter.go before the Policy extraction. It is the oracle
// the refactored PaperContract-driven loop must match grant-for-grant.
func legacyShrinkToFit(cands []*cand, target int) {
	sum := 0
	for _, c := range cands {
		sum += c.grant
	}
	for sum > target {
		var victim *cand
		for _, c := range cands { // pass 1: slack jobs
			if c.severe || c.grant <= 1 {
				continue
			}
			if victim == nil || c.grant > victim.grant {
				victim = c
			}
		}
		if victim == nil {
			for _, c := range cands { // pass 2: least-severe goal-missers
				if c.grant <= 1 {
					continue
				}
				if victim == nil || c.overshoot < victim.overshoot ||
					(c.overshoot == victim.overshoot && c.grant > victim.grant) {
					victim = c
				}
			}
		}
		if victim == nil {
			break
		}
		half := victim.grant / 2
		if half < 1 {
			half = 1
		}
		if fit := victim.grant - (sum - target); fit > half {
			half = fit
		}
		sum -= victim.grant - half
		victim.grant = half
	}
}

// TestShrinkToFitMatchesLegacy: across seeded random member groups, the
// policy-driven shrink loop reproduces the pre-refactor algorithm's grants
// exactly — the arbiter half of the byte-identical-default guarantee.
func TestShrinkToFitMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 500; round++ {
		n := 1 + rng.Intn(8)
		mk := func() []*cand {
			out := make([]*cand, n)
			rng2 := rand.New(rand.NewSource(int64(round)))
			for i := range out {
				out[i] = &cand{
					id:        string(rune('a' + i)),
					grant:     1 + rng2.Intn(24),
					severe:    rng2.Intn(2) == 0,
					overshoot: time.Duration(rng2.Intn(500)) * time.Millisecond,
				}
			}
			return out
		}
		a, b := mk(), mk()
		sum := 0
		for _, c := range a {
			sum += c.grant
		}
		target := n + rng.Intn(sum+1) // from the floor to above the sum
		shrinkToFit(PaperPolicy{}, a, target)
		legacyShrinkToFit(b, target)
		for i := range a {
			if a[i].grant != b[i].grant {
				t.Fatalf("round %d target %d: member %d grant %d != legacy %d",
					round, target, i, a[i].grant, b[i].grant)
			}
		}
	}
}

// scriptMember is a Member with a settable demand.
type scriptMember struct {
	mu sync.Mutex
	d  Demand
}

func (m *scriptMember) Demand() Demand {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.d
}

func (m *scriptMember) Grant(int) {}

func (m *scriptMember) set(d Demand) {
	m.mu.Lock()
	m.d = d
	m.mu.Unlock()
}

// legacyRebalance is the pre-refactor rebalance pipeline (demand gathering,
// weighted fair shares, legacy shrink) as a pure function: expected grants
// per member for one round. fairShares and tenantLoad are the untouched
// production helpers.
func legacyRebalance(budget int, order []string, tenantOf map[string]string,
	weights map[string]int, demands map[string]Demand) map[string]int {
	cands := make([]*cand, 0, len(order))
	for _, id := range order {
		d := demands[id]
		des := d.DesiredLP
		if !d.Valid || des < 1 {
			des = d.CurrentLP
			if des < 1 {
				des = 1
			}
		}
		if des > budget {
			des = budget
		}
		cands = append(cands, &cand{
			id: id, grant: des,
			severe:    d.Valid && d.Goal > 0 && d.Overshoot > 0,
			overshoot: d.Overshoot,
		})
	}
	groups := make(map[string][]*cand)
	var tenants []string
	for _, c := range cands {
		tn := tenantOf[c.id]
		if _, seen := groups[tn]; !seen {
			tenants = append(tenants, tn)
		}
		groups[tn] = append(groups[tn], c)
	}
	loads := make([]tenantLoad, len(tenants))
	for i, tn := range tenants {
		ld := tenantLoad{weight: weights[tn], floor: len(groups[tn])}
		if ld.weight < 1 {
			ld.weight = 1
		}
		for _, c := range groups[tn] {
			ld.demand += c.grant
		}
		loads[i] = ld
	}
	shares := fairShares(budget, loads)
	for i, tn := range tenants {
		legacyShrinkToFit(groups[tn], shares[i])
	}
	out := make(map[string]int, len(cands))
	for _, c := range cands {
		out[c.id] = c.grant
	}
	return out
}

// TestArbiterGrantsMatchLegacy: seeded scripted demand streams through the
// real (policy-driven) arbiter produce, round for round, exactly the grants
// of the pre-refactor rebalance pipeline — multi-tenant division included.
func TestArbiterGrantsMatchLegacy(t *testing.T) {
	const budget = 16
	clk := clock.NewVirtual(clock.Epoch)
	a := NewArbiter(budget, clk)
	a.SetTenantWeight("alpha", 3)
	a.SetTenantWeight("beta", 1)

	ids := []string{"a1", "a2", "b1", "b2", "c1"}
	tenantOf := map[string]string{"a1": "alpha", "a2": "alpha", "b1": "beta", "b2": "beta", "c1": "gamma"}
	members := map[string]*scriptMember{}
	for _, id := range ids {
		m := &scriptMember{}
		members[id] = m
		if err := a.AdmitFor(id, tenantOf[id], m); err != nil {
			t.Fatalf("admit %s: %v", id, err)
		}
	}

	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 240; round++ {
		demands := map[string]Demand{}
		for _, id := range ids {
			d := Demand{
				Valid:     rng.Intn(10) > 0,
				CurrentLP: 1 + rng.Intn(6),
				DesiredLP: rng.Intn(25),
				Goal:      time.Duration(rng.Intn(2)) * time.Second,
				Overshoot: time.Duration(rng.Intn(900)-300) * time.Millisecond,
			}
			demands[id] = d
			members[id].set(d)
		}
		a.Rebalance()
		want := legacyRebalance(budget, ids, tenantOf, map[string]int{"alpha": 3, "beta": 1}, demands)
		got := a.Grants()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: grants %v != legacy %v", round, got, want)
		}
	}
}
