package core

import (
	"testing"

	"skandium/internal/clock"
)

// TestADGPredictorMatchesFig1 pins the default predictor to the paper's
// worked example: at the Fig. 1 snapshot, limited(2) predicts 115, best
// effort 100, optimal LP 3.
func TestADGPredictorMatchesFig1(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	pred, err := ADGPredictor{}.Predict(PredictorInput{
		Node:    s.outer,
		Tracker: s.tr,
		Est:     s.est,
		Start:   clock.Epoch,
		Now:     clock.Epoch.Add(u(70)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pred.LimitedEnd(2).Sub(clock.Epoch); got != u(115) {
		t.Fatalf("limited(2) = %v, want 115ms", got)
	}
	if got := pred.BestEnd.Sub(clock.Epoch); got != u(100) {
		t.Fatalf("best = %v, want 100ms", got)
	}
	if pred.OptimalLP != 3 {
		t.Fatalf("optimal LP = %d, want 3", pred.OptimalLP)
	}
	if lp, ok := pred.MinLP(clock.Epoch.Add(u(100)), 16); !ok || lp != 3 {
		t.Fatalf("minLP = %d/%v, want 3", lp, ok)
	}
}

// TestWorkSpanPredictorFig1: the analytic predictor on the same snapshot.
// Work = 195ms total, observed by t=70 is 10+10+10+6*15+5 = 125 plus the
// running split contributes nothing yet -> remaining work 70ms. Span =
// 10+10+15+5+5 = 45ms, elapsed 70 -> remaining span 0, treated as
// saturated.
func TestWorkSpanPredictorFig1(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	now := clock.Epoch.Add(u(70))
	pred, err := WorkSpanPredictor{}.Predict(PredictorInput{
		Node:    s.outer,
		Tracker: s.tr,
		Est:     s.est,
		Start:   clock.Epoch,
		Now:     now,
	})
	if err != nil {
		t.Fatal(err)
	}
	// remaining work = 195 - 125 = 70ms; span exhausted.
	if got := pred.LimitedEnd(1).Sub(now); got != u(70) {
		t.Fatalf("limited(1) remaining = %v, want 70ms", got)
	}
	if got := pred.LimitedEnd(2).Sub(now); got != u(35) {
		t.Fatalf("limited(2) remaining = %v, want 35ms", got)
	}
	// Best end with zero remaining span is "now" — the analytic model's
	// known crudeness once elapsed exceeds the span.
	if pred.BestEnd != now {
		t.Fatalf("best end = %v, want now", pred.BestEnd)
	}
	// MinLP for a 100ms deadline: 70ms work over 30ms budget -> ceil = 3.
	if lp, ok := pred.MinLP(clock.Epoch.Add(u(100)), 16); !ok || lp != 3 {
		t.Fatalf("minLP = %d/%v, want 3", lp, ok)
	}
	// Infeasible deadline.
	if _, ok := pred.MinLP(now.Add(-u(1)), 16); ok {
		t.Fatal("past deadline reported feasible")
	}
}

// TestWorkSpanPredictorFresh: before anything ran (but with initialized
// estimates), remaining work and span equal the full program estimates.
func TestWorkSpanPredictorFresh(t *testing.T) {
	s := newFig1Setup()
	// Root must exist for the ADG predictor but not for work/span; still,
	// emit the opening event so both see a started execution.
	s.emit(s.outer, 0, -1, 0, 0, 0, 0)
	pred, err := WorkSpanPredictor{}.Predict(PredictorInput{
		Node: s.outer, Tracker: s.tr, Est: s.est,
		Start: clock.Epoch, Now: clock.Epoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pred.LimitedEnd(1).Sub(clock.Epoch); got != u(195) {
		t.Fatalf("limited(1) = %v, want 195ms (full work)", got)
	}
	if got := pred.BestEnd.Sub(clock.Epoch); got != u(45) {
		t.Fatalf("best = %v, want 45ms (full span)", got)
	}
	// Optimal ≈ ceil(work/span) = ceil(195/45) = 5.
	if pred.OptimalLP != 5 {
		t.Fatalf("optimal = %d, want 5", pred.OptimalLP)
	}
}

// TestControllerWithWorkSpanPredictor: the full loop still adapts and the
// Fig. 1 §4 example raises LP under the analytic model too.
func TestControllerWithWorkSpanPredictor(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 2}
	ctl := NewController(Config{WCTGoal: u(100), MaxLP: 16, Increase: IncreaseMinimal,
		Predictor: WorkSpanPredictor{}},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	if !ctl.Analyze(clock.Epoch.Add(u(70))) {
		t.Fatal("analysis did not run")
	}
	// limited(2) = 70+35 = 105 > 100 -> raise to minLP 3.
	if lever.LP() != 3 {
		t.Fatalf("LP = %d, want 3", lever.LP())
	}
}

// TestPredictorNames: names identify variants in logs/benches.
func TestPredictorNames(t *testing.T) {
	if (ADGPredictor{}).Name() != "adg" || (WorkSpanPredictor{}).Name() != "workspan" {
		t.Fatal("predictor names changed")
	}
}
