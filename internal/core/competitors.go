package core

// This file holds the competitor adaptation policies: alternatives to the
// paper's rule that share its actuation contract (Policy) and race against
// it in the tournament harness (internal/tournament). All three are
// deterministic per seed — the stochastic ones draw every perturbation
// from a seeded PRNG — so tournament league tables reproduce exactly.

import (
	"math/rand"
	"sort"
)

// HillClimb is a local-search autotuner in the spirit of the concurrency-
// library autotuners surveyed in PAPERS.md: it does not trust the model's
// optimum, only the feasibility signal at the current LP. On a predicted
// miss it climbs with doubling steps (or jumps back to the cheapest LP it
// has ever seen meet the goal); on slack it probes one step down, with a
// seeded occasional two-step perturbation to escape plateaus.
type HillClimb struct {
	PaperContract
	seed    int64
	rng     *rand.Rand
	step    int
	bestLP  int // cheapest LP observed feasible so far
	hasBest bool
}

// NewHillClimb builds a seeded hill-climbing policy.
func NewHillClimb(seed int64) *HillClimb {
	return &HillClimb{seed: seed, rng: rand.New(rand.NewSource(seed)), step: 1}
}

// Name implements Policy.
func (h *HillClimb) Name() string { return "hillclimb" }

// ClonePolicy implements Cloner: a fresh instance replaying the original
// seed, so a fan-out point (multi-input Stream) hands every controller an
// independent climber.
func (h *HillClimb) ClonePolicy() Policy { return NewHillClimb(h.seed) }

// Observe implements Policy.
func (h *HillClimb) Observe(pred *Prediction, act Actuation) Proposal {
	cur := act.CurLP
	deadline := act.Deadline()
	ceil := act.MaxLP
	if ceil <= 0 {
		ceil = pred.OptimalLP
	}
	if ceil < cur {
		ceil = cur
	}

	if pred.LimitedEnd(cur).After(deadline) { // predicted miss: climb
		if h.step < ceil {
			h.step *= 2
		}
		target := cur + h.step
		reason := "hillclimb: goal missed, climb up"
		if h.hasBest && h.bestLP > cur {
			target = h.bestLP
			reason = "hillclimb: goal missed, return to best-seen LP"
		}
		if target > ceil {
			target = ceil
		}
		if target <= cur {
			return Proposal{LP: cur}
		}
		return Proposal{LP: target, Reason: reason}
	}

	// Feasible at cur: remember the cheapest feasible level, reset the
	// climb step, and probe downward.
	if !h.hasBest || cur < h.bestLP {
		h.bestLP, h.hasBest = cur, true
	}
	h.step = 1
	if act.Held || cur <= 1 {
		return Proposal{LP: cur}
	}
	down := 1
	if h.rng.Intn(4) == 0 {
		down = 2 // seeded perturbation: occasionally probe deeper
	}
	target := cur - down
	if target < 1 {
		target = 1
	}
	if pred.LimitedEnd(target).After(deadline) {
		return Proposal{LP: cur} // probe infeasible; hold
	}
	return Proposal{LP: target, Reason: "hillclimb: slack, probe down"}
}

// banditDecay is the exponential forgetting factor of the arm values and
// banditEps the exploration probability.
const (
	banditDecay = 0.6
	banditEps   = 0.1
)

// Bandit is an epsilon-greedy bandit over a geometric ladder of LP arms
// (1, 2, 4, ... up to the cap), after the RL-style farm managers in
// PAPERS.md. Each analysis first credits the arm in force with a decayed
// reward — the normalized goal margin, minus a small LP-economy cost so
// two goal-hitting arms prefer the cheaper one — then picks the next arm:
// the best-valued one, or (with probability epsilon) a seeded random one.
type Bandit struct {
	PaperContract
	seed    int64
	rng     *rand.Rand
	q       map[int]float64 // arm (LP) -> decayed value
	lastArm int             // arm credited on the next Observe (0 = none)
}

// NewBandit builds a seeded epsilon-greedy bandit policy.
func NewBandit(seed int64) *Bandit {
	return &Bandit{seed: seed, rng: rand.New(rand.NewSource(seed)), q: map[int]float64{}}
}

// Name implements Policy.
func (b *Bandit) Name() string { return "bandit" }

// ClonePolicy implements Cloner: a fresh instance replaying the original
// seed, with empty arm values — behaviourally a newly built bandit.
func (b *Bandit) ClonePolicy() Policy { return NewBandit(b.seed) }

// arms returns the LP ladder up to ceil, ascending.
func (b *Bandit) arms(ceil int) []int {
	var out []int
	for a := 1; a < ceil; a *= 2 {
		out = append(out, a)
	}
	return append(out, ceil)
}

// Observe implements Policy.
func (b *Bandit) Observe(pred *Prediction, act Actuation) Proposal {
	cur := act.CurLP
	deadline := act.Deadline()
	ceil := act.MaxLP
	if ceil <= 0 {
		ceil = pred.OptimalLP
	}
	if ceil < cur {
		ceil = cur
	}
	arms := b.arms(ceil)

	// Credit the arm whose effect this analysis observes. The lever may
	// have been clamped externally, so the reward goes to the actual LP's
	// nearest arm, not the one we asked for.
	if b.lastArm > 0 {
		margin := float64(deadline.Sub(pred.LimitedEnd(cur))) / float64(act.Goal)
		if margin > 1 {
			margin = 1
		}
		if margin < -1 {
			margin = -1
		}
		reward := margin - 0.3*float64(cur)/float64(ceil)
		arm := nearestArm(arms, cur)
		b.q[arm] = banditDecay*b.q[arm] + (1-banditDecay)*reward
	}

	var target int
	reason := "bandit: explore random LP arm"
	if b.rng.Float64() < banditEps {
		target = arms[b.rng.Intn(len(arms))]
	} else {
		reason = "bandit: exploit best-valued LP arm"
		best, bestV := arms[0], -1e18
		for _, a := range arms {
			v, seen := b.q[a]
			if !seen {
				v = 0.5 // optimistic prior: try every arm at least once
			}
			if v > bestV {
				best, bestV = a, v
			}
		}
		target = best
	}
	b.lastArm = target
	if act.Held && target < cur {
		// Decrease-damping window: hold the lever and defer the lower arm
		// to the next unheld analysis. Wishing lower through Demand would
		// let the budget arbiter shrink the grant below the held level,
		// re-opening the decrease the controller is damping.
		return Proposal{LP: cur}
	}
	if target == cur {
		return Proposal{LP: cur}
	}
	return Proposal{LP: target, Reason: reason}
}

// nearestArm maps an LP to the closest arm on the ladder (ties go down).
func nearestArm(arms []int, lp int) int {
	best, dist := arms[0], lp-arms[0]
	if dist < 0 {
		dist = -dist
	}
	for _, a := range arms[1:] {
		d := lp - a
		if d < 0 {
			d = -d
		}
		if d < dist {
			best, dist = a, d
		}
	}
	return best
}

// Cost weights of CostAware: a missed-deadline second costs missWeight
// times what one worker-second costs.
const (
	costMissWeight = 4.0
	costLPWeight   = 1.0
)

// CostAware trades the WCT concern against an LP·time resource-cost model,
// after Aldinucci et al.'s multi-concern autonomic management (PAPERS.md):
// each analysis picks the LP minimizing
//
//	missWeight·overshoot(lp) + lpWeight·lp·remaining(lp)
//
// over a bounded candidate ladder (powers of two, the neighbours of the
// current LP, and the model optimum). Unlike the paper's rule it will run
// slightly late on purpose when the parallelism needed to hit the goal
// costs more than the overshoot it saves.
type CostAware struct {
	PaperContract
}

// NewCostAware builds the cost-aware policy (deterministic; no seed).
func NewCostAware() *CostAware { return &CostAware{} }

// Name implements Policy.
func (*CostAware) Name() string { return "costaware" }

// Observe implements Policy.
func (*CostAware) Observe(pred *Prediction, act Actuation) Proposal {
	cur := act.CurLP
	deadline := act.Deadline()
	ceil := act.MaxLP
	if ceil <= 0 {
		ceil = pred.OptimalLP
	}
	if ceil < cur {
		ceil = cur
	}

	// Candidate ladder, ascending and deduplicated.
	seen := map[int]bool{}
	var cands []int
	add := func(lp int) {
		if lp >= 1 && lp <= ceil && !seen[lp] {
			seen[lp] = true
			cands = append(cands, lp)
		}
	}
	for a := 1; a < ceil; a *= 2 {
		add(a)
	}
	add(ceil)
	add(cur - 1)
	add(cur)
	add(cur + 1)
	add(pred.OptimalLP)
	sort.Ints(cands)

	best, bestCost := cur, 0.0
	for i, lp := range cands {
		end := pred.LimitedEnd(lp)
		overshoot := end.Sub(deadline)
		if overshoot < 0 {
			overshoot = 0
		}
		remaining := end.Sub(act.Now)
		if remaining < 0 {
			remaining = 0
		}
		cost := costMissWeight*overshoot.Seconds() +
			costLPWeight*float64(lp)*remaining.Seconds()
		if i == 0 || cost < bestCost { // ties keep the smaller LP
			best, bestCost = lp, cost
		}
	}
	if act.Held && best < cur {
		// Decrease-damping window: hold, and defer the cheaper LP to the
		// next unheld analysis rather than wishing for less via Demand
		// (which would invite the arbiter to shrink under the hold).
		return Proposal{LP: cur}
	}
	if best == cur {
		return Proposal{LP: cur}
	}
	return Proposal{LP: best, Reason: "costaware: minimize overshoot + LP·time cost"}
}
