package core

import (
	"time"

	"skandium/internal/clock"
)

// ClusterArbiter extends the single-node Arbiter across machines: instead
// of dividing one machine's LP budget over the jobs running on it, it
// divides a cluster-wide LP budget over worker *nodes*, granting each node
// the level of parallelism it may spend. The paper's §6 frames node count
// as "adding or removing workers like adding or removing threads in a
// centralised manner" — the same asymmetric policy one level up again:
// grants rise eagerly toward a node's wish, fall by halving, and the sum of
// all per-node grants never exceeds the global budget (the invariant the
// coordinator relies on to promise bounded cluster load).
//
// Members are node proxies (remote.Cluster adapts each worker endpoint into
// a Member whose Demand is built from the worker's reported counters via
// NodeDemand and whose Grant pushes the share to the worker's pool). Node
// loss is ReleaseNode — the dead node's share flows to the survivors on the
// very next rebalance, which is what makes SIGKILL-resilient rebalancing
// budget-safe.
type ClusterArbiter struct {
	arb *Arbiter
}

// NewClusterArbiter creates a cluster-wide arbiter over a global LP budget
// (minimum 1). A nil clock means the system clock; on the virtual clock the
// whole grant history is deterministic, which is how the multi-node
// simulator tests assert the Σ grants ≤ budget invariant.
func NewClusterArbiter(budget int, clk clock.Clock) *ClusterArbiter {
	return &ClusterArbiter{arb: NewArbiter(budget, clk)}
}

// Budget returns the global cluster LP budget.
func (c *ClusterArbiter) Budget() int { return c.arb.Budget() }

// AdmitNode adds a worker node under its address and rebalances. It fails
// with ErrNoCapacity when the budget cannot guarantee every node one worker.
func (c *ClusterArbiter) AdmitNode(addr string, m Member) error {
	return c.arb.Admit(addr, m)
}

// AdmitNodeFor admits a worker node dedicated to a tenant pool: its grant
// competes inside that tenant's weighted share of the cluster budget, so a
// deployment can pin worker groups to tenants without a second arbiter.
func (c *ClusterArbiter) AdmitNodeFor(addr, tenant string, m Member) error {
	return c.arb.AdmitFor(addr, tenant, m)
}

// SetTenantWeight fixes a tenant pool's relative weight in the cluster
// budget division (minimum 1; unconfigured pools weigh 1).
func (c *ClusterArbiter) SetTenantWeight(tenant string, w int) {
	c.arb.SetTenantWeight(tenant, w)
}

// TenantGrants returns the summed per-node grants of every tenant pool.
func (c *ClusterArbiter) TenantGrants() map[string]int { return c.arb.TenantGrants() }

// ReleaseNode removes a node (decommissioned or lost) and immediately
// redistributes its grant to the surviving nodes. Unknown addresses are a
// no-op, so probe loops may release unconditionally.
func (c *ClusterArbiter) ReleaseNode(addr string) { c.arb.Release(addr) }

// Nodes returns the admitted node addresses in admission order.
func (c *ClusterArbiter) Nodes() []string { return c.arb.Members() }

// Grants returns the current per-node LP grant of every admitted node.
func (c *ClusterArbiter) Grants() map[string]int { return c.arb.Grants() }

// Granted returns the sum of all per-node grants (always <= Budget).
func (c *ClusterArbiter) Granted() int { return c.arb.Granted() }

// Decisions returns the grant-change log (Job holds the node address).
func (c *ClusterArbiter) Decisions() []GrantDecision { return c.arb.Decisions() }

// Rebalance re-divides the budget according to the nodes' current demands.
func (c *ClusterArbiter) Rebalance() { c.arb.Rebalance() }

// StartTicker rebalances every d until the returned stop function is
// called. Only meaningful on real-time clocks.
func (c *ClusterArbiter) StartTicker(d time.Duration) (stop func()) {
	return c.arb.StartTicker(d)
}

// NodeReport is a worker node's self-reported runtime state, as carried by
// its health probe response.
type NodeReport struct {
	// LP is the node pool's current (capped) level of parallelism.
	LP int
	// Active is the number of node workers currently executing a task.
	Active int
	// Queued is the number of tasks waiting for a node worker.
	Queued int
	// MaxLP is the node's hard thread cap (0 = unbounded).
	MaxLP int
}

// NodeDemand converts a node report into the Demand vocabulary the arbiter
// policy divides by: a node asks for as many workers as it could employ
// right now (running plus queued tasks, clamped to its thread cap), with a
// floor of one so an idle node keeps a grant to accept the next task
// without a round trip through the arbiter. Nodes have no WCT goal of
// their own (goals belong to jobs), so node demands are never "severe" —
// under budget pressure the largest grant is halved first, exactly the
// slack-pays-before-need rule of the single-node arbiter.
func NodeDemand(r NodeReport) Demand {
	want := r.Active + r.Queued
	if r.MaxLP > 0 && want > r.MaxLP {
		want = r.MaxLP
	}
	if want < 1 {
		want = 1
	}
	cur := r.LP
	if cur < 1 {
		cur = 1
	}
	return Demand{Valid: true, CurrentLP: cur, DesiredLP: want}
}

// CapDemand clamps a node demand to at most cap workers — the probation
// share: a node re-admitted after a partition asks for no more than cap
// until it has re-earned trust, so a flapping node can never seize a large
// budget slice it is about to drop again. The arbiter itself is unchanged:
// probation is expressed purely through the demand the node proxy reports,
// which keeps Σ grants ≤ budget a single invariant with a single enforcer.
func CapDemand(d Demand, cap int) Demand {
	if cap < 1 {
		cap = 1
	}
	if d.DesiredLP > cap {
		d.DesiredLP = cap
	}
	if d.CurrentLP > cap {
		d.CurrentLP = cap
	}
	return d
}
