package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"skandium/internal/clock"
)

// fakeMember scripts a Demand and records the grants it receives.
type fakeMember struct {
	mu     sync.Mutex
	demand Demand
	grants []int
}

func (f *fakeMember) Demand() Demand {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.demand
}

func (f *fakeMember) Grant(n int) {
	f.mu.Lock()
	f.grants = append(f.grants, n)
	// Granting caps the member: its actual LP follows min(desire, grant),
	// like a pool under SetCap.
	if f.demand.CurrentLP > n || f.demand.CurrentLP < n && f.demand.DesiredLP >= n {
		f.demand.CurrentLP = min(f.demand.DesiredLP, n)
	}
	f.mu.Unlock()
}

func (f *fakeMember) set(d Demand) {
	f.mu.Lock()
	f.demand = d
	f.mu.Unlock()
}

func (f *fakeMember) lastGrant() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.grants) == 0 {
		return 0
	}
	return f.grants[len(f.grants)-1]
}

func wish(desired, current int, goal, overshoot time.Duration) Demand {
	return Demand{Valid: true, DesiredLP: desired, CurrentLP: current,
		Goal: goal, Overshoot: overshoot}
}

// TestArbiterNeverExceedsBudget: under randomized demand churn from N
// members, the sum of grants stays within the global budget after every
// rebalance.
func TestArbiterNeverExceedsBudget(t *testing.T) {
	const budget = 10
	clk := clock.NewVirtual(clock.Epoch)
	a := NewArbiter(budget, clk)
	rng := rand.New(rand.NewSource(7))

	members := make([]*fakeMember, 6)
	for i := range members {
		members[i] = &fakeMember{}
		members[i].set(wish(1, 1, time.Second, 0))
		if err := a.Admit(string(rune('a'+i)), members[i]); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	for round := 0; round < 200; round++ {
		for _, m := range members {
			over := time.Duration(rng.Intn(5)-2) * time.Second
			m.set(wish(1+rng.Intn(3*budget), 1+rng.Intn(budget), time.Second, over))
		}
		clk.Advance(time.Millisecond)
		a.Rebalance()
		if got := a.Granted(); got > budget {
			t.Fatalf("round %d: granted %d exceeds budget %d (grants %v)", round, got, budget, a.Grants())
		}
		for id, g := range a.Grants() {
			if g < 1 {
				t.Fatalf("round %d: job %s granted %d < 1", round, id, g)
			}
		}
	}
}

// TestArbiterSevereBeforeSlack: when wishes exceed the budget, a
// goal-missing job is granted its desire while the slack jobs are halved;
// the goal-misser is only shrunk once slack is exhausted, least severe
// first.
func TestArbiterSevereBeforeSlack(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	a := NewArbiter(12, clk)

	severe := &fakeMember{}
	severe.set(wish(8, 2, time.Second, 500*time.Millisecond)) // missing its goal
	slackA := &fakeMember{}
	slackA.set(wish(6, 6, time.Second, -200*time.Millisecond)) // comfortable
	slackB := &fakeMember{}
	slackB.set(wish(6, 6, time.Second, -800*time.Millisecond)) // very comfortable

	for id, m := range map[string]Member{"severe": severe, "slackA": slackA, "slackB": slackB} {
		if err := a.Admit(id, m); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Millisecond)
	a.Rebalance()

	// Wishes total 8+6+6=20 over a budget of 12: the severe job must get its
	// full 8; the slack jobs absorb the whole squeeze (halved to 3+1 or 2+2).
	if got := severe.lastGrant(); got != 8 {
		t.Fatalf("severe grant = %d, want full desire 8 (grants %v)", got, a.Grants())
	}
	if got := slackA.lastGrant() + slackB.lastGrant(); got > 4 {
		t.Fatalf("slack jobs kept %d > 4 (grants %v)", got, a.Grants())
	}
	if a.Granted() > 12 {
		t.Fatalf("granted %d exceeds budget", a.Granted())
	}

	// Now two severe jobs over-ask: the least severe one is shrunk first.
	slackA.set(wish(10, 3, time.Second, 100*time.Millisecond)) // mildly missing
	clk.Advance(time.Millisecond)
	a.Rebalance()
	if sg, ag := severe.lastGrant(), slackA.lastGrant(); sg < ag {
		t.Fatalf("more severe job got %d < less severe %d", sg, ag)
	}
	if a.Granted() > 12 {
		t.Fatalf("granted %d exceeds budget", a.Granted())
	}
}

// TestArbiterReleaseReturnsBudget: a finished job's grant flows back to the
// survivors on Release.
func TestArbiterReleaseReturnsBudget(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	a := NewArbiter(8, clk)

	hungry := &fakeMember{}
	hungry.set(wish(8, 4, time.Second, 300*time.Millisecond))
	done := &fakeMember{}
	done.set(wish(4, 4, time.Second, -100*time.Millisecond))

	if err := a.Admit("hungry", hungry); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit("done", done); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	a.Rebalance()
	before := hungry.lastGrant()
	if before >= 8 {
		t.Fatalf("hungry already has the full budget (%d) while sharing", before)
	}

	a.Release("done")
	if got := hungry.lastGrant(); got != 8 {
		t.Fatalf("after release hungry grant = %d, want 8", got)
	}
	if members := a.Members(); len(members) != 1 || members[0] != "hungry" {
		t.Fatalf("members after release: %v", members)
	}
	// The release and the regrant are both in the decision log.
	var sawReturn, sawRegrant bool
	for _, d := range a.Decisions() {
		if d.Job == "done" && d.NewLP == 0 {
			sawReturn = true
		}
		if d.Job == "hungry" && d.NewLP == 8 {
			sawRegrant = true
		}
	}
	if !sawReturn || !sawRegrant {
		t.Fatalf("decision log missing return/regrant: %v", a.Decisions())
	}
}

// TestArbiterAdmitCapacity: admission is bounded by the budget (one worker
// minimum per job), and capacity frees on release.
func TestArbiterAdmitCapacity(t *testing.T) {
	a := NewArbiter(2, clock.NewVirtual(clock.Epoch))
	m := func() *fakeMember {
		f := &fakeMember{}
		f.set(wish(1, 1, 0, 0))
		return f
	}
	if err := a.Admit("one", m()); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit("two", m()); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit("three", m()); err != ErrNoCapacity {
		t.Fatalf("third admit: err = %v, want ErrNoCapacity", err)
	}
	if err := a.Admit("one", m()); err == nil {
		t.Fatal("duplicate admit succeeded")
	}
	a.Release("one")
	if err := a.Admit("three", m()); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}
