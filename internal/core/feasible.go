package core

import (
	"sync"
	"time"
)

// Feasible reports whether a WCT goal is achievable with at most lp workers
// for a job whose total work (serial busy time) and span (critical path,
// i.e. the best-effort WCT at unbounded LP) have been estimated. It applies
// the greedy-scheduling lower bound
//
//	WCT >= max(span, work/lp)
//
// which errs on the permissive side: when even this bound exceeds the goal,
// no schedule under the budget can meet it, so rejecting is safe — the
// admission-control analogue of the paper's predictor-driven decisions.
// A non-positive goal means "no QoS", which is always feasible.
func Feasible(goal, work, span time.Duration, lp int) bool {
	if goal <= 0 {
		return true
	}
	if lp < 1 {
		lp = 1
	}
	bound := span
	if perLP := work / time.Duration(lp); perLP > bound {
		bound = perLP
	}
	return goal >= bound
}

// Profile is a per-skeleton execution estimate used for admission control:
// the cheapest observed work and span across completed runs. Keeping minima
// (not means) keeps rejection conservative — a skeleton submitted with
// lighter parameters than any run seen so far is still admitted.
type Profile struct {
	Work time.Duration // minimum observed serial work (sum of busy time)
	Span time.Duration // minimum observed best-effort WCT (critical path)
	Runs int           // completed runs folded in
}

// ProfileStore aggregates Profiles per skeleton name, concurrency-safe. The
// daemon feeds it from every successfully completed job and consults it
// before accepting a goal-bearing submission.
type ProfileStore struct {
	mu sync.Mutex
	m  map[string]Profile
}

// NewProfileStore returns an empty store.
func NewProfileStore() *ProfileStore {
	return &ProfileStore{m: map[string]Profile{}}
}

// Observe folds one completed run's work and span into the skeleton's
// profile. Zero measurements are ignored per-dimension (a job without a WCT
// goal never produced a span estimate, but its busy time still counts).
func (p *ProfileStore) Observe(name string, work, span time.Duration) {
	if name == "" || (work <= 0 && span <= 0) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.m[name]
	if work > 0 && (!ok || pr.Work == 0 || work < pr.Work) {
		pr.Work = work
	}
	if span > 0 && (!ok || pr.Span == 0 || span < pr.Span) {
		pr.Span = span
	}
	pr.Runs++
	p.m[name] = pr
}

// Lookup returns the skeleton's profile, if any run has been observed.
func (p *ProfileStore) Lookup(name string) (Profile, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.m[name]
	return pr, ok
}
