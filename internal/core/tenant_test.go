package core

import (
	"testing"
	"time"

	"skandium/internal/clock"
)

// TestFairShares: the weighted max-min division is exact when the budget
// divides proportionally, honours floors, and leaves satisfied tenants at
// their demand.
func TestFairShares(t *testing.T) {
	cases := []struct {
		name   string
		budget int
		loads  []tenantLoad
		want   []int
	}{
		{
			name:   "proportional",
			budget: 12,
			loads: []tenantLoad{
				{weight: 3, floor: 1, demand: 100},
				{weight: 2, floor: 1, demand: 100},
				{weight: 1, floor: 1, demand: 100},
			},
			want: []int{6, 4, 2},
		},
		{
			name:   "unused quota redistributes",
			budget: 12,
			loads: []tenantLoad{
				{weight: 3, floor: 1, demand: 100},
				{weight: 1, floor: 1, demand: 2}, // asks for almost nothing
			},
			want: []int{10, 2},
		},
		{
			name:   "floors always paid",
			budget: 6,
			loads: []tenantLoad{
				{weight: 100, floor: 1, demand: 100},
				{weight: 1, floor: 4, demand: 4}, // four members, one unit each
			},
			want: []int{2, 4},
		},
		{
			name:   "under-demand leaves budget unspent",
			budget: 20,
			loads: []tenantLoad{
				{weight: 1, floor: 1, demand: 3},
				{weight: 1, floor: 1, demand: 2},
			},
			want: []int{3, 2},
		},
	}
	for _, tc := range cases {
		got := fairShares(tc.budget, tc.loads)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: fairShares returned %v", tc.name, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: share[%d] = %d, want %d (all %v)", tc.name, i, got[i], tc.want[i], got)
			}
		}
	}
}

// TestArbiterTenantWeightedShares: under full saturation (every member
// wishes the whole budget) three tenants at weights 3/2/1 receive exactly
// proportional granted-LP totals.
func TestArbiterTenantWeightedShares(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	a := NewArbiter(24, clk)
	a.SetTenantWeight("alpha", 3)
	a.SetTenantWeight("beta", 2)
	a.SetTenantWeight("gamma", 1)

	for _, tn := range []string{"alpha", "beta", "gamma"} {
		for i := 0; i < 2; i++ {
			m := &fakeMember{}
			m.set(wish(24, 1, time.Second, -time.Millisecond))
			if err := a.AdmitFor(tn+string(rune('0'+i)), tn, m); err != nil {
				t.Fatalf("admit %s/%d: %v", tn, i, err)
			}
		}
	}
	clk.Advance(time.Millisecond)
	a.Rebalance()

	got := a.TenantGrants()
	want := map[string]int{"alpha": 12, "beta": 8, "gamma": 4}
	for tn, w := range want {
		if got[tn] != w {
			t.Errorf("tenant %s granted %d, want %d (all %v)", tn, got[tn], w, got)
		}
	}
	if a.Granted() > 24 {
		t.Fatalf("granted %d exceeds budget", a.Granted())
	}
}

// TestArbiterTenantUnusedQuotaRedistributes: a tenant demanding less than
// its weighted share keeps only what it asks for; the leftover flows to the
// hungry tenants instead of idling.
func TestArbiterTenantUnusedQuotaRedistributes(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	a := NewArbiter(24, clk)
	a.SetTenantWeight("alpha", 3)
	a.SetTenantWeight("beta", 2)
	a.SetTenantWeight("gamma", 1)

	hungry := func(tn string, i int) {
		m := &fakeMember{}
		m.set(wish(24, 1, time.Second, -time.Millisecond))
		if err := a.AdmitFor(tn+string(rune('0'+i)), tn, m); err != nil {
			t.Fatalf("admit %s/%d: %v", tn, i, err)
		}
	}
	hungry("alpha", 0)
	hungry("alpha", 1)
	hungry("beta", 0)
	hungry("beta", 1)
	for i := 0; i < 2; i++ { // gamma wants one worker per member only
		m := &fakeMember{}
		m.set(wish(1, 1, time.Second, -time.Millisecond))
		if err := a.AdmitFor("gamma"+string(rune('0'+i)), "gamma", m); err != nil {
			t.Fatalf("admit gamma/%d: %v", i, err)
		}
	}
	clk.Advance(time.Millisecond)
	a.Rebalance()

	got := a.TenantGrants()
	if got["gamma"] != 2 {
		t.Errorf("gamma granted %d, want its demand 2 (all %v)", got["gamma"], got)
	}
	if got["alpha"]+got["beta"] != 22 {
		t.Errorf("alpha+beta granted %d, want the remaining 22 (all %v)", got["alpha"]+got["beta"], got)
	}
	if got["alpha"] <= got["beta"] {
		t.Errorf("alpha (w3) granted %d <= beta (w2) %d", got["alpha"], got["beta"])
	}
}

// TestArbiterTenantNoCrossStarvation: a goal-missing job wishing the whole
// budget raids slack inside its own tenant but cannot push another tenant
// below its weighted guarantee.
func TestArbiterTenantNoCrossStarvation(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	a := NewArbiter(12, clk)
	a.SetTenantWeight("alpha", 1)
	a.SetTenantWeight("beta", 1)

	severe := &fakeMember{}
	severe.set(wish(12, 2, time.Second, 500*time.Millisecond)) // missing its goal badly
	if err := a.AdmitFor("a-severe", "alpha", severe); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m := &fakeMember{}
		m.set(wish(6, 6, time.Second, -200*time.Millisecond)) // comfortable
		if err := a.AdmitFor("b-slack"+string(rune('0'+i)), "beta", m); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Millisecond)
	a.Rebalance()

	got := a.TenantGrants()
	if got["beta"] != 6 {
		t.Errorf("beta granted %d, want its guaranteed half 6 (all %v)", got["beta"], got)
	}
	if got["alpha"] != 6 {
		t.Errorf("alpha granted %d, want 6 (all %v)", got["alpha"], got)
	}
}

// TestArbiterDefaultTenant: Admit (no tenant) lands in DefaultTenant and
// CanonTenant folds "" onto it, so untagged traffic is one shared pool.
func TestArbiterDefaultTenant(t *testing.T) {
	if CanonTenant("") != DefaultTenant {
		t.Fatalf("CanonTenant(\"\") = %q", CanonTenant(""))
	}
	if CanonTenant("acme") != "acme" {
		t.Fatalf("CanonTenant(acme) = %q", CanonTenant("acme"))
	}
	a := NewArbiter(4, clock.NewVirtual(clock.Epoch))
	m := &fakeMember{}
	m.set(wish(4, 1, 0, 0))
	if err := a.Admit("j1", m); err != nil {
		t.Fatal(err)
	}
	got := a.TenantGrants()
	if got[DefaultTenant] != 4 {
		t.Fatalf("default tenant granted %d, want 4 (all %v)", got[DefaultTenant], got)
	}
}
