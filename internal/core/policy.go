package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Policy is the single actuation contract of the adaptation stack. The
// controller drives Observe once per analysis (the per-job face: given the
// latest WCT prediction, propose a level of parallelism); the arbiter
// drives Contract once per rebalance round (the fleet face: given every
// member's tentative grant, pick the next victim to shrink). The paper's
// asymmetric rule, its ablation variants and the competitor policies are
// all implementations of this one interface — neither controller.go nor
// arbiter.go special-cases any of them.
//
// Stateful policies (hill-climber, bandit) are driven by exactly one
// controller at a time: the controller serializes analyses, but one policy
// value must not be shared across concurrently executing controllers. A
// fan-out point that hands one configured value to many controllers (a
// multi-input Stream) must replicate it first — see Cloner and ClonePolicy.
type Policy interface {
	// Name returns the registry name the policy answers to.
	Name() string
	// Observe proposes an LP for the actuation view act given the current
	// prediction. Returning Proposal{LP: act.CurLP} (or LP < 1) holds.
	Observe(pred *Prediction, act Actuation) Proposal
	// Contract picks which member of an over-budget group to shrink and to
	// what grant. ok=false stops the round (nothing shrinkable left). It is
	// called repeatedly until the group's grants fit its share.
	Contract(members []GrantView, deficit int) (victim, grant int, ok bool)
}

// Cloner is the optional replication face of a stateful Policy. Fan-out
// points that drive one configured policy value with many concurrent
// controllers call ClonePolicy before handing the value to each controller;
// a stateful policy implements Cloner to return a fresh, independent
// instance. The built-ins replay their original seed, so every clone
// produces the same proposal stream as a newly built policy.
type Cloner interface {
	ClonePolicy() Policy
}

// ClonePolicy returns an instance of p safe to hand to a new controller:
// p.ClonePolicy() when p is stateful (implements Cloner), p itself when it
// is stateless and shareable. A nil p stays nil.
func ClonePolicy(p Policy) Policy {
	if c, ok := p.(Cloner); ok {
		return c.ClonePolicy()
	}
	return p
}

// Actuation is the controller-side view a policy observes: the current
// lever position and the QoS envelope the proposal must respect.
type Actuation struct {
	// CurLP is the lever's level of parallelism at analysis time.
	CurLP int
	// MaxLP is the LP QoS cap (0 = uncapped). The controller clamps
	// proposals to it regardless; policies may use it to bound search.
	MaxLP int
	// Goal is the WCT goal in force, measured from Start.
	Goal time.Duration
	// Start is the execution start; Now the analysis instant.
	Start time.Time
	Now   time.Time
	// Held reports that the decrease-damping window after an increase is
	// still in force: the controller will ignore any proposal below CurLP.
	Held bool
}

// Deadline is the instant the WCT goal expires.
func (a Actuation) Deadline() time.Time { return a.Start.Add(a.Goal) }

// Proposal is a policy's answer to one Observe call.
type Proposal struct {
	// LP is the proposed level of parallelism. LP < 1 or LP == CurLP holds
	// the current level.
	LP int
	// Demand optionally overrides the DesiredLP published for budget
	// arbitration (0 = publish LP). Lets a policy settle for less than it
	// wants while still signalling the full wish to the arbiter. It must
	// not signal *less* than the proposed LP: a smaller Demand invites the
	// arbiter to shrink the grant below the level the policy just chose to
	// hold (notably during the decrease-damping window).
	Demand int
	// Reason is the decision-log annotation when the proposal is applied.
	Reason string
}

// GrantView is one member's state as seen by Contract during a rebalance:
// its tentative grant and how badly it misses its goal.
type GrantView struct {
	// ID is the member's job id (diagnostic; selection is by index).
	ID string
	// Grant is the member's tentative budget share this round.
	Grant int
	// Severe marks a goal-missing member (Overshoot > 0 under a goal).
	Severe bool
	// Overshoot is predicted end minus deadline at the member's current LP.
	Overshoot time.Duration
}

// PaperContract is the fleet face of the paper's asymmetric rule, shared by
// every built-in policy (embed it to satisfy Contract): halve the slack
// members first (largest grant first, so comfort pays before need), then
// goal-missing members, least severe overshoot first; the final cut is
// clamped to land exactly on the target rather than halving below it.
type PaperContract struct{}

// Contract implements the Policy fleet face.
func (PaperContract) Contract(members []GrantView, deficit int) (int, int, bool) {
	victim := -1
	for i, m := range members { // pass 1: slack members
		if m.Severe || m.Grant <= 1 {
			continue
		}
		if victim < 0 || m.Grant > members[victim].Grant {
			victim = i
		}
	}
	if victim < 0 {
		for i, m := range members { // pass 2: least-severe goal-missers
			if m.Grant <= 1 {
				continue
			}
			if victim < 0 || m.Overshoot < members[victim].Overshoot ||
				(m.Overshoot == members[victim].Overshoot && m.Grant > members[victim].Grant) {
				victim = i
			}
		}
	}
	if victim < 0 {
		return 0, 0, false // all at the floor of 1
	}
	half := members[victim].Grant / 2
	if half < 1 {
		half = 1
	}
	if fit := members[victim].Grant - deficit; fit > half {
		half = fit // exact-fit clamp: stop at the target, not below it
	}
	return victim, half, true
}

// PaperPolicy is the paper's §4 autonomic rule as a Policy: raise LP on a
// predicted goal miss (to the optimal level, or minimally under
// IncreaseMinimal), lower it conservatively when the goal survives with
// fewer threads. The zero value is the paper default (raise to optimal,
// halve on slack).
type PaperPolicy struct {
	PaperContract
	Increase IncreasePolicy
	Decrease DecreasePolicy
}

// Name implements Policy.
func (p PaperPolicy) Name() string {
	switch {
	case p.Increase == IncreaseOptimal && p.Decrease == DecreaseHalve:
		return "paper"
	case p.Increase == IncreaseMinimal && p.Decrease == DecreaseHalve:
		return "paper-minimal"
	case p.Increase == IncreaseOptimal && p.Decrease == DecreaseNone:
		return "paper-nodecrease"
	case p.Increase == IncreaseOptimal && p.Decrease == DecreaseExact:
		return "paper-exact"
	}
	return fmt.Sprintf("paper[inc=%d,dec=%d]", p.Increase, p.Decrease)
}

// Observe implements the per-analysis face of the paper's rule.
func (p PaperPolicy) Observe(pred *Prediction, act Actuation) Proposal {
	cur := act.CurLP
	deadline := act.Deadline()
	optimal := pred.OptimalLP

	ceil := act.MaxLP
	if ceil <= 0 {
		ceil = optimal
	}

	if pred.LimitedEnd(cur).After(deadline) {
		// The goal will be missed at the current LP: self-optimize up.
		target := cur
		reason := ""
		switch p.Increase {
		case IncreaseOptimal:
			target = optimal
			reason = "goal missed: raise to optimal LP"
		case IncreaseMinimal:
			if lp, ok := pred.MinLP(deadline, ceil); ok {
				target = lp
				reason = "goal missed: raise to minimal sufficient LP"
			} else {
				// Even infinite parallelism misses the goal: fall back to
				// the smallest LP that gets within a few percent of the
				// best possible end time (frugal version of "raise to
				// optimal" — hitting the best-effort end exactly would
				// need peak parallelism for no real gain).
				slack := time.Duration(float64(pred.BestEnd.Sub(act.Now)) * unreachableSlack)
				if lp, ok := pred.MinLP(pred.BestEnd.Add(slack), ceil); ok {
					target = lp
				} else {
					target = optimal
				}
				reason = "goal unreachable: raise to minimal LP near best effort"
			}
		}
		if act.MaxLP > 0 && target > act.MaxLP {
			target = act.MaxLP
		}
		if target > cur {
			return Proposal{LP: target, Reason: reason}
		}
		return Proposal{LP: cur}
	}

	// On track: consider lowering LP (self-configuration toward economy).
	if act.Held {
		return Proposal{LP: cur}
	}
	switch p.Decrease {
	case DecreaseNone:
		return Proposal{LP: cur}
	case DecreaseHalve:
		half := cur / 2
		if half < 1 || half == cur {
			return Proposal{LP: cur}
		}
		if !pred.LimitedEnd(half).After(deadline) {
			return Proposal{LP: half, Reason: "goal met with half the threads: halve LP"}
		}
	case DecreaseExact:
		if lp, ok := pred.MinLP(deadline, cur); ok && lp < cur {
			return Proposal{LP: lp, Reason: "goal met with fewer threads: drop to minimum"}
		}
	}
	return Proposal{LP: cur}
}

// policyFactory builds a registered policy from a seed.
type policyFactory func(seed int64) Policy

// policyRegistry maps names to factories. Built-ins only; extend via
// RegisterPolicy.
var policyRegistry = map[string]policyFactory{
	"paper": func(int64) Policy {
		return PaperPolicy{Increase: IncreaseOptimal, Decrease: DecreaseHalve}
	},
	"paper-minimal": func(int64) Policy {
		return PaperPolicy{Increase: IncreaseMinimal, Decrease: DecreaseHalve}
	},
	"paper-nodecrease": func(int64) Policy {
		return PaperPolicy{Increase: IncreaseOptimal, Decrease: DecreaseNone}
	},
	"paper-exact": func(int64) Policy {
		return PaperPolicy{Increase: IncreaseOptimal, Decrease: DecreaseExact}
	},
	"hillclimb": func(seed int64) Policy { return NewHillClimb(seed) },
	"bandit":    func(seed int64) Policy { return NewBandit(seed) },
	"costaware": func(int64) Policy { return NewCostAware() },
}

// RegisterPolicy adds a named policy constructor to the registry (library
// extensions and tests). Registering an existing name replaces it.
func RegisterPolicy(name string, f func(seed int64) Policy) {
	if name == "" || f == nil {
		panic("core: RegisterPolicy with empty name or nil factory")
	}
	policyRegistry[strings.ToLower(name)] = f
}

// NewPolicy builds a registered policy by name. The empty name means the
// paper default. The seed drives the stochastic policies' perturbations;
// deterministic policies ignore it.
func NewPolicy(name string, seed int64) (Policy, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		key = "paper"
	}
	f, ok := policyRegistry[key]
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (have %s)",
			name, strings.Join(Policies(), ", "))
	}
	return f(seed), nil
}

// Policies returns the registered policy names, sorted.
func Policies() []string {
	out := make([]string, 0, len(policyRegistry))
	for name := range policyRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
