package core

import (
	"testing"
	"time"
)

func TestFeasible(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name             string
		goal, work, span time.Duration
		lp               int
		want             bool
	}{
		{"no goal is always feasible", 0, ms(1000), ms(100), 1, true},
		{"negative goal is no goal", -ms(5), ms(1000), ms(100), 1, true},
		{"goal above both bounds", ms(500), ms(1000), ms(100), 4, true}, // work/4=250
		{"goal below span", ms(50), ms(100), ms(100), 64, false},
		{"goal below work/lp", ms(100), ms(1000), ms(10), 4, false}, // 1000/4=250
		{"goal exactly at the bound", ms(250), ms(1000), ms(10), 4, true},
		{"lp floor of one", ms(500), ms(1000), 0, 0, false}, // 1000/1 > 500
		{"zero estimates never reject", ms(1), 0, 0, 8, true},
	}
	for _, c := range cases {
		if got := Feasible(c.goal, c.work, c.span, c.lp); got != c.want {
			t.Errorf("%s: Feasible(%v,%v,%v,%d) = %v, want %v",
				c.name, c.goal, c.work, c.span, c.lp, got, c.want)
		}
	}
}

func TestProfileStoreKeepsMinima(t *testing.T) {
	ps := NewProfileStore()
	if _, ok := ps.Lookup("wordcount"); ok {
		t.Fatal("empty store reported a profile")
	}
	ps.Observe("wordcount", 800*time.Millisecond, 90*time.Millisecond)
	ps.Observe("wordcount", 500*time.Millisecond, 120*time.Millisecond)
	ps.Observe("wordcount", 900*time.Millisecond, 40*time.Millisecond)
	pr, ok := ps.Lookup("wordcount")
	if !ok || pr.Runs != 3 {
		t.Fatalf("profile missing or wrong run count: %+v ok=%v", pr, ok)
	}
	if pr.Work != 500*time.Millisecond || pr.Span != 40*time.Millisecond {
		t.Fatalf("minima not kept: %+v", pr)
	}
}

func TestProfileStoreIgnoresZeroDimensions(t *testing.T) {
	ps := NewProfileStore()
	// A goal-less run has busy time but no span estimate.
	ps.Observe("sleepgrid", 300*time.Millisecond, 0)
	pr, ok := ps.Lookup("sleepgrid")
	if !ok || pr.Work != 300*time.Millisecond || pr.Span != 0 {
		t.Fatalf("zero span mishandled: %+v", pr)
	}
	// A later run with a span must not let the zero overwrite the work.
	ps.Observe("sleepgrid", 0, 50*time.Millisecond)
	pr, _ = ps.Lookup("sleepgrid")
	if pr.Work != 300*time.Millisecond || pr.Span != 50*time.Millisecond {
		t.Fatalf("dimensions cross-contaminated: %+v", pr)
	}
	// Fully-zero observations are dropped outright.
	ps.Observe("", time.Second, time.Second)
	ps.Observe("noop", 0, 0)
	if _, ok := ps.Lookup("noop"); ok {
		t.Fatal("zero observation created a profile")
	}
}
