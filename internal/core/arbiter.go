package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"skandium/internal/clock"
)

// Member is the per-job face the Arbiter manages: a controller (or a test
// double) that publishes its resource wish and accepts a budget grant. The
// grant is an external LP cap — the member's own controller keeps computing
// its desired/optimal LP from its ADG exactly as in the paper; the arbiter
// only bounds how much of that wish the machine honours.
type Member interface {
	// Demand returns the member's latest resource wish.
	Demand() Demand
	// Grant imposes the arbiter's budget share as an external LP cap.
	Grant(n int)
}

// GrantDecision records one change of a member's budget share, for
// experiment harnesses, the daemon API and debugging.
type GrantDecision struct {
	Time   time.Time
	Job    string
	OldLP  int
	NewLP  int
	Reason string
}

// String renders the decision compactly.
func (d GrantDecision) String() string {
	return fmt.Sprintf("[%v] %s grant %d->%d: %s", d.Time, d.Job, d.OldLP, d.NewLP, d.Reason)
}

// ErrNoCapacity is returned by Admit when every budget unit is already
// committed to a running job (each admitted job needs at least one worker).
var ErrNoCapacity = fmt.Errorf("core: arbiter at capacity")

// maxDecisionLog bounds the grant-decision log: a long-lived (or
// harness-driven) arbiter churns through millions of grants, and an
// unbounded audit trail would be a slow memory leak. The oldest half is
// dropped when the cap is hit; the API serves the recent window.
const maxDecisionLog = 4096

// Arbiter owns a machine-wide LP budget and divides it across the per-job
// autonomic controllers — the fleet-level analogue of the paper's
// asymmetric policy. On every Rebalance each member starts from the LP its
// own controller desires; if the wishes exceed the budget, jobs that are
// meeting their goal (slack) are halved first, and only then are
// goal-missing jobs shrunk, least-severe overshoot first. Increases are
// granted eagerly (a goal-missing job jumps straight to its wish when the
// budget allows), decreases happen in halving steps, mirroring the
// controller's raise-to-optimal / halve-to-decrease asymmetry one level up.
type Arbiter struct {
	budget int
	clk    clock.Clock

	mu      sync.Mutex
	policy  Policy // fleet face driven per rebalance round (nil = paper)
	members map[string]*arbEntry
	order   []string // admission order, for deterministic iteration
	weights map[string]int
	log     []GrantDecision
}

type arbEntry struct {
	m      Member
	tenant string
	grant  int
}

// NewArbiter creates an arbiter over a global LP budget (minimum 1). A nil
// clock means the system clock; decisions are stamped with its readings.
func NewArbiter(budget int, clk clock.Clock) *Arbiter {
	if budget < 1 {
		budget = 1
	}
	if clk == nil {
		clk = clock.System
	}
	return &Arbiter{
		budget:  budget,
		clk:     clk,
		members: map[string]*arbEntry{},
		weights: map[string]int{},
	}
}

// SetPolicy installs the policy whose Contract face shrinks over-budget
// tenant groups during rebalances (nil restores the paper default) and
// rebalances so the new rule takes effect immediately.
func (a *Arbiter) SetPolicy(p Policy) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.policy = p
	a.rebalanceLocked("policy changed")
}

// SetTenantWeight fixes a tenant's relative weight in the budget division
// (minimum 1; unconfigured tenants weigh 1) and rebalances so the new
// proportions take effect immediately.
func (a *Arbiter) SetTenantWeight(tenant string, w int) {
	if w < 1 {
		w = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.weights[CanonTenant(tenant)] = w
	a.rebalanceLocked("reweighted " + CanonTenant(tenant))
}

// TenantWeights returns the configured weight table (canonical names).
func (a *Arbiter) TenantWeights() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.weights))
	for t, w := range a.weights {
		out[t] = w
	}
	return out
}

// TenantGrants returns the sum of current grants per tenant — the shares
// the fairness invariants are asserted against.
func (a *Arbiter) TenantGrants() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := map[string]int{}
	for _, e := range a.members {
		out[e.tenant] += e.grant
	}
	return out
}

// Budget returns the global LP budget.
func (a *Arbiter) Budget() int { return a.budget }

// Admit adds a member under the given id (default tenant) and rebalances.
// It fails with ErrNoCapacity when the budget cannot guarantee every
// admitted job its minimum of one worker, and with an error on duplicate
// ids. The caller (the daemon) queues submissions that do not fit and
// retries on Release.
func (a *Arbiter) Admit(id string, m Member) error {
	return a.AdmitFor(id, DefaultTenant, m)
}

// AdmitFor admits a member on behalf of a tenant. The tenant tag decides
// which weighted share of the budget the member competes inside; everything
// else matches Admit.
func (a *Arbiter) AdmitFor(id, tenant string, m Member) error {
	if m == nil {
		panic("core: Admit with nil member")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.members[id]; dup {
		return fmt.Errorf("core: arbiter already has job %q", id)
	}
	if len(a.members) >= a.budget {
		return ErrNoCapacity
	}
	a.members[id] = &arbEntry{m: m, tenant: CanonTenant(tenant)}
	a.order = append(a.order, id)
	a.rebalanceLocked("admitted " + id)
	return nil
}

// Release removes a member (finished, canceled or evicted) and immediately
// redistributes its budget to the survivors. Unknown ids are a no-op.
func (a *Arbiter) Release(id string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e, ok := a.members[id]
	if !ok {
		return
	}
	delete(a.members, id)
	for i, oid := range a.order {
		if oid == id {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
	if e.grant != 0 {
		a.logLocked(GrantDecision{
			Time: a.clk.Now(), Job: id, OldLP: e.grant, NewLP: 0,
			Reason: "released: budget returned",
		})
	}
	a.rebalanceLocked("released " + id)
}

// Members returns the admitted job ids in admission order.
func (a *Arbiter) Members() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.order...)
}

// Grants returns the current budget share of every admitted member.
func (a *Arbiter) Grants() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.members))
	for id, e := range a.members {
		out[id] = e.grant
	}
	return out
}

// Granted returns the sum of all current grants (always <= Budget).
func (a *Arbiter) Granted() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for _, e := range a.members {
		total += e.grant
	}
	return total
}

// Decisions returns a copy of the grant-change log.
func (a *Arbiter) Decisions() []GrantDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]GrantDecision(nil), a.log...)
}

// Rebalance re-divides the budget according to the members' current
// demands. The daemon calls it periodically and after QoS changes.
func (a *Arbiter) Rebalance() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rebalanceLocked("periodic rebalance")
}

// StartTicker rebalances every d on a background goroutine until the
// returned stop function is called. Only meaningful on real-time clocks.
func (a *Arbiter) StartTicker(d time.Duration) (stop func()) {
	if d <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				a.Rebalance()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// cand is one member's state during a rebalance round.
type cand struct {
	id        string
	e         *arbEntry
	grant     int
	severe    bool // goal-missing at its current LP
	overshoot time.Duration
}

func (a *Arbiter) rebalanceLocked(why string) {
	if len(a.members) == 0 {
		return
	}
	now := a.clk.Now()
	cands := make([]*cand, 0, len(a.members))
	for _, id := range a.order {
		e := a.members[id]
		d := e.m.Demand()
		des := d.DesiredLP
		if !d.Valid || des < 1 {
			// Before the first analysis (or without a goal) a job holds what
			// it actually uses; a fresh job starts at the minimum.
			des = d.CurrentLP
			if des < 1 {
				des = 1
			}
		}
		if des > a.budget {
			des = a.budget
		}
		cands = append(cands, &cand{
			id: id, e: e, grant: des,
			severe:    d.Valid && d.Goal > 0 && d.Overshoot > 0,
			overshoot: d.Overshoot,
		})
	}

	// Level 1: partition the budget across tenants by weighted max-min
	// fairness. Each tenant's floor is one unit per member (the guarantee
	// Admit enforces) and its demand is the sum of its members' wishes, so a
	// lightly-loaded tenant's unused share flows to the hungry ones. Because
	// the shares are computed before severity is even looked at, a tenant
	// full of goal-missing jobs can raid slack *inside* its own share but
	// can never push another tenant below its weighted guarantee.
	groups := make(map[string][]*cand)
	var tenants []string // first-admission order, for deterministic ties
	for _, c := range cands {
		t := c.e.tenant
		if _, seen := groups[t]; !seen {
			tenants = append(tenants, t)
		}
		groups[t] = append(groups[t], c)
	}
	loads := make([]tenantLoad, len(tenants))
	for i, t := range tenants {
		ld := tenantLoad{weight: a.weights[t], floor: len(groups[t])}
		if ld.weight < 1 {
			ld.weight = 1
		}
		for _, c := range groups[t] {
			ld.demand += c.grant
		}
		loads[i] = ld
	}
	shares := fairShares(a.budget, loads)

	// Level 2: inside each tenant, shrink until the wishes fit its share.
	// The victim choice is the policy's Contract face — the paper default
	// halves the slack jobs first (largest grant first, so comfort pays
	// before need), then goal-missing jobs, least severe overshoot first.
	pol := a.policy
	if pol == nil {
		pol = PaperPolicy{}
	}
	for i, t := range tenants {
		shrinkToFit(pol, groups[t], shares[i])
	}

	// Apply and log changes: all cuts before all raises, so the sum of the
	// caps actually imposed on the pools never exceeds the budget, not even
	// between two Grant calls. Within each group, most severe first.
	sort.SliceStable(cands, func(i, j int) bool {
		di, dj := cands[i].grant < cands[i].e.grant, cands[j].grant < cands[j].e.grant
		if di != dj {
			return di // decreases first
		}
		return cands[i].overshoot > cands[j].overshoot
	})
	for _, c := range cands {
		if c.grant == c.e.grant {
			continue
		}
		old := c.e.grant
		c.e.grant = c.grant
		c.e.m.Grant(c.grant)
		reason := why
		if c.grant < old {
			if c.severe {
				reason += ": shrink goal-missing job (slack exhausted)"
			} else {
				reason += ": halve slack job"
			}
		} else if c.severe {
			reason += ": grant goal-missing job"
		} else {
			reason += ": grant"
		}
		a.logLocked(GrantDecision{
			Time: now, Job: c.id, OldLP: old, NewLP: c.grant, Reason: reason,
		})
	}
}

// logLocked appends a decision, dropping the oldest half at the cap.
// Caller holds a.mu.
func (a *Arbiter) logLocked(d GrantDecision) {
	if len(a.log) >= maxDecisionLog {
		keep := a.log[len(a.log)-maxDecisionLog/2:]
		a.log = append(a.log[:0], keep...)
	}
	a.log = append(a.log, d)
}

// shrinkToFit drives the policy's Contract face until the members' tentative
// grants sum to at most target. Each round the policy picks one victim and
// its new (smaller) grant; the paper default halves rather than zeroes, so
// every member keeps at least one worker, and clamps the final cut to land
// exactly on the target (the proportionality the overload fairness
// invariants assert). A policy returning no victim, an out-of-range index
// or a non-shrinking grant ends the round early — the floor admission
// guarantees (one worker per member within budget) can never be violated by
// a buggy policy, only approached.
func shrinkToFit(pol Policy, cands []*cand, target int) {
	sum := 0
	for _, c := range cands {
		sum += c.grant
	}
	views := make([]GrantView, len(cands))
	for sum > target {
		for i, c := range cands {
			views[i] = GrantView{ID: c.id, Grant: c.grant, Severe: c.severe, Overshoot: c.overshoot}
		}
		v, g, ok := pol.Contract(views, sum-target)
		if !ok || v < 0 || v >= len(cands) {
			break // nothing shrinkable (all at the floor of 1), or bad index
		}
		if g < 1 {
			g = 1
		}
		if g >= cands[v].grant {
			break // no progress; guards against a policy that never shrinks
		}
		sum -= cands[v].grant - g
		cands[v].grant = g
	}
}
