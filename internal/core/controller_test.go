package core

import (
	"sync"
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

func u(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

// fakeLever records SetLP calls.
type fakeLever struct {
	mu  sync.Mutex
	lp  int
	max int
	log []int
}

func (f *fakeLever) LP() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lp
}

func (f *fakeLever) SetLP(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.max > 0 && n > f.max {
		n = f.max
	}
	if n < 1 {
		n = 1
	}
	f.lp = n
	f.log = append(f.log, n)
}

// fig1Setup rebuilds the paper's Fig. 1 snapshot (see adg tests) and
// returns everything a controller needs.
type fig1Setup struct {
	outer, inner *skel.Node
	fs, fe, fm   *muscle.Muscle
	est          *estimate.Registry
	tr           *statemachine.Tracker
}

func newFig1Setup() *fig1Setup {
	s := &fig1Setup{
		fs: muscle.NewSplit("fs", func(any) ([]any, error) { return nil, nil }),
		fe: muscle.NewExecute("fe", func(p any) (any, error) { return p, nil }),
		fm: muscle.NewMerge("fm", func([]any) (any, error) { return nil, nil }),
	}
	s.inner = skel.NewMap(s.fs, skel.NewSeq(s.fe), s.fm)
	s.outer = skel.NewMap(s.fs, s.inner, s.fm)
	s.est = estimate.NewRegistry(nil)
	s.est.InitDuration(s.fs.ID(), u(10))
	s.est.InitDuration(s.fe.ID(), u(15))
	s.est.InitDuration(s.fm.ID(), u(5))
	s.est.InitCard(s.fs.ID(), 3)
	s.tr = statemachine.NewTracker(s.est)
	return s
}

func (s *fig1Setup) emit(nd *skel.Node, idx, parent int64, when event.When, where event.Where, ms int, card int) {
	s.tr.Listener().Handler(&event.Event{
		Node: nd, Trace: []*skel.Node{nd}, Index: idx, Parent: parent,
		When: when, Where: where, Time: clock.Epoch.Add(u(ms)), Card: card,
	})
}

func (s *fig1Setup) replayUntil70() {
	s.emit(s.outer, 0, event.NoParent, event.Before, event.Skeleton, 0, 0)
	s.emit(s.outer, 0, event.NoParent, event.Before, event.Split, 0, 0)
	s.emit(s.outer, 0, event.NoParent, event.After, event.Split, 10, 3)
	for b, idx := range []int64{1, 2} {
		_ = b
		s.emit(s.inner, idx, 0, event.Before, event.Skeleton, 10, 0)
		s.emit(s.inner, idx, 0, event.Before, event.Split, 10, 0)
		s.emit(s.inner, idx, 0, event.After, event.Split, 20, 3)
	}
	seq := s.inner.Children()[0]
	idx := int64(3)
	for round := 0; round < 3; round++ {
		for _, parent := range []int64{1, 2} {
			start := 20 + 15*round
			s.emit(seq, idx, parent, event.Before, event.Skeleton, start, 0)
			s.emit(seq, idx, parent, event.After, event.Skeleton, start+15, 0)
			idx++
		}
	}
	s.emit(s.inner, 1, 0, event.Before, event.Merge, 65, 0)
	s.emit(s.inner, 1, 0, event.After, event.Merge, 70, 0)
	s.emit(s.inner, 1, 0, event.After, event.Skeleton, 70, 0)
	s.emit(s.inner, 9, 0, event.Before, event.Skeleton, 65, 0)
	s.emit(s.inner, 9, 0, event.Before, event.Split, 65, 0)
}

// TestIncreaseToOptimalFig1 is the paper's §4 closing example: goal 100 at
// the Fig. 1 snapshot, LP 2 -> "Skandium will autonomically increase LP to
// 3" (IncreaseOptimal finds the best-effort timeline peak 3).
func TestIncreaseToOptimalFig1(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 2}
	ctl := NewController(Config{WCTGoal: u(100), Increase: IncreaseOptimal},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	if !ctl.Analyze(clock.Epoch.Add(u(70))) {
		t.Fatal("analysis did not run")
	}
	if lever.LP() != 3 {
		t.Fatalf("LP = %d, want 3", lever.LP())
	}
	ds := ctl.Decisions()
	if len(ds) != 1 || ds[0].OldLP != 2 || ds[0].NewLP != 3 {
		t.Fatalf("decisions: %v", ds)
	}
	if ds[0].PredictedWCT != u(115) {
		t.Fatalf("predicted WCT %v, want 115ms", ds[0].PredictedWCT)
	}
	if ds[0].BestWCT != u(100) {
		t.Fatalf("best WCT %v, want 100ms", ds[0].BestWCT)
	}
	if ds[0].OptimalLP != 3 {
		t.Fatalf("optimal LP %d, want 3", ds[0].OptimalLP)
	}
}

// TestIncreaseMinimalFig1 finds the same LP 3 (it is both minimal and
// optimal here).
func TestIncreaseMinimalFig1(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 2, max: 16}
	ctl := NewController(Config{WCTGoal: u(100), MaxLP: 16, Increase: IncreaseMinimal},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	ctl.Analyze(clock.Epoch.Add(u(70)))
	if lever.LP() != 3 {
		t.Fatalf("LP = %d, want 3", lever.LP())
	}
}

// TestNoIncreaseWhenGoalMet: goal 120 > limited-LP(2) prediction 115, so
// nothing changes (halving to 1 would predict ~160 > 120, so no decrease
// either).
func TestNoIncreaseWhenGoalMet(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 2}
	ctl := NewController(Config{WCTGoal: u(120)},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	ctl.Analyze(clock.Epoch.Add(u(70)))
	if lever.LP() != 2 || len(ctl.Decisions()) != 0 {
		t.Fatalf("LP=%d decisions=%v", lever.LP(), ctl.Decisions())
	}
}

// TestDecreaseHalves: a very loose goal lets the controller halve from 8 to
// 4 (one halving per analysis, the paper's conservative decrease).
func TestDecreaseHalves(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 8}
	ctl := NewController(Config{WCTGoal: u(500), Decrease: DecreaseHalve},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	ctl.Analyze(clock.Epoch.Add(u(70)))
	if lever.LP() != 4 {
		t.Fatalf("LP = %d, want 4 (one halving)", lever.LP())
	}
	ctl.Analyze(clock.Epoch.Add(u(71)))
	if lever.LP() != 2 {
		t.Fatalf("LP = %d, want 2 (second halving)", lever.LP())
	}
}

// TestDecreaseNone keeps LP.
func TestDecreaseNone(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 8}
	ctl := NewController(Config{WCTGoal: u(500), Decrease: DecreaseNone},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	ctl.Analyze(clock.Epoch.Add(u(70)))
	if lever.LP() != 8 {
		t.Fatalf("LP = %d, want 8", lever.LP())
	}
}

// TestDecreaseExact drops straight to the minimum sufficient LP.
func TestDecreaseExact(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 8}
	ctl := NewController(Config{WCTGoal: u(500), Decrease: DecreaseExact},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	ctl.Analyze(clock.Epoch.Add(u(70)))
	if lever.LP() != 1 {
		t.Fatalf("LP = %d, want 1 (160ms sequential < 500ms goal)", lever.LP())
	}
}

// TestDecreaseHoldDamping: right after an increase, decreases are held
// back for the configured duration.
func TestDecreaseHoldDamping(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 2}
	ctl := NewController(Config{WCTGoal: u(100), Increase: IncreaseOptimal,
		DecreaseHold: u(50)},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	// Increase at t=70 (2 -> 3).
	ctl.Analyze(clock.Epoch.Add(u(70)))
	if lever.LP() != 3 {
		t.Fatalf("LP = %d, want 3", lever.LP())
	}
	// Pretend the LP was manually raised: a decrease would now be possible
	// (goal easily met) but must be held until 70+50.
	lever.SetLP(8)
	ctl.cfg.WCTGoal = u(500)
	ctl.Analyze(clock.Epoch.Add(u(100)))
	if lever.LP() != 8 {
		t.Fatalf("decrease not held: LP = %d", lever.LP())
	}
	ctl.Analyze(clock.Epoch.Add(u(121)))
	if lever.LP() != 4 {
		t.Fatalf("decrease after hold did not halve: LP = %d", lever.LP())
	}
}

// TestMaxLPCapsIncrease: LP QoS bounds the increase.
func TestMaxLPCapsIncrease(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 1, max: 2}
	ctl := NewController(Config{WCTGoal: u(90), MaxLP: 2, Increase: IncreaseOptimal},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	ctl.Analyze(clock.Epoch.Add(u(70)))
	if lever.LP() > 2 {
		t.Fatalf("LP = %d exceeds MaxLP 2", lever.LP())
	}
}

// TestGatedUntilEstimatesComplete: no analysis before every required
// estimate exists.
func TestGatedUntilEstimatesComplete(t *testing.T) {
	s := newFig1Setup()
	// Wipe the estimates: fresh registry without |fs|.
	est := estimate.NewRegistry(nil)
	tr := statemachine.NewTracker(est)
	lever := &fakeLever{lp: 1}
	ctl := NewController(Config{WCTGoal: u(100)}, s.outer, lever, est, tr,
		clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	if ctl.Analyze(clock.Epoch.Add(u(10))) {
		t.Fatal("analysis ran without estimates")
	}
	if ctl.Analyses() != 0 || len(ctl.Decisions()) != 0 {
		t.Fatal("gated analysis left traces")
	}
}

// TestNoGoalNoAnalysis: a zero WCT goal disables the control loop.
func TestNoGoalNoAnalysis(t *testing.T) {
	s := newFig1Setup()
	s.replayUntil70()
	lever := &fakeLever{lp: 2}
	ctl := NewController(Config{}, s.outer, lever, s.est, s.tr,
		clock.NewVirtual(clock.Epoch))
	if ctl.Analyze(clock.Epoch.Add(u(70))) {
		t.Fatal("analysis ran without a goal")
	}
}

// TestListenerThrottling: with an AnalysisInterval, only spaced-out events
// trigger analyses, and the first possible one is never delayed by gated
// attempts.
func TestListenerThrottling(t *testing.T) {
	s := newFig1Setup()
	lever := &fakeLever{lp: 2}
	ctl := NewController(Config{WCTGoal: u(100), AnalysisInterval: u(50)},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	reg := event.NewRegistry()
	Attach(reg, s.tr, ctl)

	emitVia := func(nd *skel.Node, idx, parent int64, when event.When, where event.Where, ms, card int) {
		reg.Emit(&event.Event{Node: nd, Trace: []*skel.Node{nd}, Index: idx, Parent: parent,
			When: when, Where: where, Time: clock.Epoch.Add(u(ms)), Card: card})
	}
	// Run a full inner map so estimates become complete at t=45.
	emitVia(s.outer, 0, event.NoParent, event.Before, event.Skeleton, 0, 0)
	emitVia(s.outer, 0, event.NoParent, event.Before, event.Split, 0, 0)
	emitVia(s.outer, 0, event.NoParent, event.After, event.Split, 10, 3)
	emitVia(s.inner, 1, 0, event.Before, event.Skeleton, 10, 0)
	emitVia(s.inner, 1, 0, event.Before, event.Split, 10, 0)
	emitVia(s.inner, 1, 0, event.After, event.Split, 20, 3)
	seq := s.inner.Children()[0]
	emitVia(seq, 2, 1, event.Before, event.Skeleton, 20, 0)
	emitVia(seq, 2, 1, event.After, event.Skeleton, 35, 0)
	emitVia(s.inner, 1, 0, event.Before, event.Merge, 40, 0)
	emitVia(s.inner, 1, 0, event.After, event.Merge, 45, 0)
	first := ctl.Analyses()
	if first == 0 {
		t.Fatal("first analysis never ran")
	}
	// Immediately-following events within the interval do not re-analyze.
	emitVia(seq, 3, 1, event.Before, event.Skeleton, 46, 0)
	emitVia(seq, 3, 1, event.After, event.Skeleton, 47, 0)
	if ctl.Analyses() != first {
		t.Fatalf("throttle failed: %d analyses", ctl.Analyses())
	}
	// After the interval, analysis runs again.
	emitVia(seq, 4, 1, event.Before, event.Skeleton, 120, 0)
	emitVia(seq, 4, 1, event.After, event.Skeleton, 130, 0)
	if ctl.Analyses() <= first {
		t.Fatal("no analysis after the interval")
	}
}

// TestRootDoneStopsAnalyses: after the root Skeleton/After the controller
// goes quiet.
func TestRootDoneStopsAnalyses(t *testing.T) {
	s := newFig1Setup()
	lever := &fakeLever{lp: 2}
	ctl := NewController(Config{WCTGoal: u(100)},
		s.outer, lever, s.est, s.tr, clock.NewVirtual(clock.Epoch))
	ctl.SetStart(clock.Epoch)
	reg := event.NewRegistry()
	Attach(reg, s.tr, ctl)
	reg.Emit(&event.Event{Node: s.outer, Trace: []*skel.Node{s.outer},
		Index: 0, Parent: event.NoParent, When: event.Before, Where: event.Skeleton,
		Time: clock.Epoch})
	reg.Emit(&event.Event{Node: s.outer, Trace: []*skel.Node{s.outer},
		Index: 0, Parent: event.NoParent, When: event.After, Where: event.Skeleton,
		Time: clock.Epoch.Add(u(10))})
	n := ctl.Analyses()
	reg.Emit(&event.Event{Node: s.inner, Trace: []*skel.Node{s.inner},
		Index: 1, Parent: 0, When: event.After, Where: event.Skeleton,
		Time: clock.Epoch.Add(u(20))})
	if ctl.Analyses() != n {
		t.Fatal("controller analyzed after the root finished")
	}
}

// TestStartTickerLifecycle: zero duration is a no-op; the stop function is
// idempotent; a finished controller's ticker exits on its own.
func TestStartTickerLifecycle(t *testing.T) {
	s := newFig1Setup()
	lever := &fakeLever{lp: 1}
	ctl := NewController(Config{WCTGoal: u(100)}, s.outer, lever, s.est, s.tr,
		clock.NewVirtual(clock.Epoch))
	stop := ctl.StartTicker(0)
	stop()
	stop = ctl.StartTicker(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // idempotent
	// Finished controllers stop ticking by themselves.
	ctl.mu.Lock()
	ctl.finished = true
	ctl.mu.Unlock()
	stop2 := ctl.StartTicker(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop2()
}
