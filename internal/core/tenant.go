package core

// DefaultTenant names the tenant that untagged submissions belong to. A
// daemon that never configures tenants runs every job under it, which makes
// the weighted-fair machinery collapse to the original single-pool policy.
const DefaultTenant = "default"

// CanonTenant maps the empty string onto DefaultTenant so that "no tenant
// header" and "the default tenant" are the same identity everywhere: in the
// arbiter, the admission ladder, the journal and the metrics labels.
func CanonTenant(t string) string {
	if t == "" {
		return DefaultTenant
	}
	return t
}

// tenantLoad is one tenant's aggregate standing during a fair division of
// the budget: its weight, the floor it must receive (one unit per admitted
// member, the same guarantee Admit enforces globally), and the sum of its
// members' wishes, which caps how much of the budget it can usefully absorb.
type tenantLoad struct {
	weight int
	floor  int
	demand int
}

// fairShares divides budget units across tenants by weighted max-min
// fairness: every tenant first receives its floor, then units go one at a
// time to the unsatisfied tenant with the smallest allocation-to-weight
// ratio (earlier admission breaks ties), until every demand is met or the
// budget is spent. A tenant demanding less than its weighted share leaves
// the remainder on the table and the loop hands it to the still-hungry
// tenants — unused quota redistributes by construction. Conversely a tenant
// can never be pushed below the share the loop would give it, no matter how
// severe another tenant's goal overshoot is: severity arbitrates only
// *inside* a tenant's share, never across tenants.
//
// The ratio comparison is done in integers (alloc_i*w_j < alloc_j*w_i) so
// the division is exact and deterministic for any weights.
func fairShares(budget int, loads []tenantLoad) []int {
	alloc := make([]int, len(loads))
	spent := 0
	for i, ld := range loads {
		alloc[i] = ld.floor
		spent += ld.floor
	}
	for spent < budget {
		best := -1
		for i, ld := range loads {
			if alloc[i] >= ld.demand {
				continue // satisfied: extra units would be wasted
			}
			if best == -1 || alloc[i]*loads[best].weight < alloc[best]*ld.weight {
				best = i
			}
		}
		if best == -1 {
			break // every tenant satisfied below budget
		}
		alloc[best]++
		spent++
	}
	return alloc
}
