package core

import (
	"testing"
	"time"

	"skandium/internal/clock"
)

// clusterNode is a test node member fed by a mutable report.
type clusterNode struct {
	rep   NodeReport
	grant int
}

func (n *clusterNode) Demand() Demand { return NodeDemand(n.rep) }
func (n *clusterNode) Grant(g int)    { n.grant = g }

// TestClusterArbiterBudgetInvariant: per-node grants track demand but their
// sum never exceeds the global budget, through admission, demand swings and
// node loss — all on the virtual clock, fully deterministic.
func TestClusterArbiterBudgetInvariant(t *testing.T) {
	vclk := clock.NewVirtual(clock.Epoch)
	budget := 8
	ca := NewClusterArbiter(budget, vclk)

	nodes := map[string]*clusterNode{
		"w1": {rep: NodeReport{LP: 1, Active: 4, Queued: 12, MaxLP: 8}},
		"w2": {rep: NodeReport{LP: 1, Active: 1, Queued: 0, MaxLP: 8}},
		"w3": {rep: NodeReport{LP: 1, Active: 6, Queued: 2, MaxLP: 8}},
	}
	checkSum := func(when string) {
		total := 0
		for addr, n := range nodes {
			if g, ok := ca.Grants()[addr]; ok {
				if g != n.grant {
					t.Fatalf("%s: arbiter says %s has %d, node saw %d", when, addr, g, n.grant)
				}
				total += g
			}
		}
		if total > budget {
			t.Fatalf("%s: sum of per-node grants %d exceeds budget %d", when, total, budget)
		}
		if ca.Granted() > budget {
			t.Fatalf("%s: Granted()=%d exceeds budget %d", when, ca.Granted(), budget)
		}
	}

	for _, addr := range []string{"w1", "w2", "w3"} {
		if err := ca.AdmitNode(addr, nodes[addr]); err != nil {
			t.Fatalf("admit %s: %v", addr, err)
		}
		checkSum("after admit " + addr)
	}

	// Demands far above the budget: grants must be squeezed, not summed.
	vclk.Advance(time.Second)
	nodes["w1"].rep = NodeReport{LP: 8, Active: 8, Queued: 40, MaxLP: 8}
	nodes["w2"].rep = NodeReport{LP: 2, Active: 2, Queued: 30, MaxLP: 8}
	nodes["w3"].rep = NodeReport{LP: 4, Active: 4, Queued: 20, MaxLP: 8}
	ca.Rebalance()
	checkSum("under pressure")

	// Node loss: the dead node's share flows to the survivors.
	vclk.Advance(time.Second)
	before := ca.Granted()
	ca.ReleaseNode("w2")
	delete(nodes, "w2")
	ca.Rebalance()
	checkSum("after node loss")
	if ca.Granted() < before-nodes["w1"].grant { // survivors re-absorb budget
		t.Fatalf("budget not redistributed after node loss: %d granted", ca.Granted())
	}
	for _, addr := range ca.Nodes() {
		if addr == "w2" {
			t.Fatal("released node still admitted")
		}
	}

	// An idle cluster decays toward the one-worker floor per node.
	vclk.Advance(time.Second)
	nodes["w1"].rep = NodeReport{LP: 8, Active: 0, Queued: 0, MaxLP: 8}
	nodes["w3"].rep = NodeReport{LP: 4, Active: 0, Queued: 0, MaxLP: 8}
	for i := 0; i < 6; i++ { // halving steps
		ca.Rebalance()
		checkSum("idle decay")
	}
	if g := ca.Grants()["w1"]; g != 1 {
		t.Fatalf("idle node w1 holds %d, want floor of 1", g)
	}

	// Deterministic decision log: every entry stamped by the virtual clock.
	for _, d := range ca.Decisions() {
		if d.Time.Before(clock.Epoch) {
			t.Fatalf("decision stamped before the epoch: %v", d)
		}
	}
}

// TestNodeDemandShape: the report→demand mapping clamps and floors.
func TestNodeDemandShape(t *testing.T) {
	cases := []struct {
		rep  NodeReport
		want int
	}{
		{NodeReport{LP: 2, Active: 3, Queued: 10, MaxLP: 8}, 8}, // clamped to cap
		{NodeReport{LP: 2, Active: 3, Queued: 1, MaxLP: 8}, 4},  // active+queued
		{NodeReport{LP: 1, Active: 0, Queued: 0, MaxLP: 8}, 1},  // idle floor
		{NodeReport{LP: 4, Active: 9, Queued: 9, MaxLP: 0}, 18}, // uncapped
	}
	for i, c := range cases {
		d := NodeDemand(c.rep)
		if !d.Valid || d.DesiredLP != c.want {
			t.Fatalf("case %d: demand %+v, want DesiredLP %d", i, d, c.want)
		}
	}
}

// TestCapDemandClampsProbationShare: the probation clamp bounds both sides
// of a node demand so a re-admitted node cannot seize budget, with a floor
// of one worker.
func TestCapDemandClampsProbationShare(t *testing.T) {
	d := NodeDemand(NodeReport{LP: 6, Active: 4, Queued: 8, MaxLP: 16})
	capped := CapDemand(d, 2)
	if capped.DesiredLP != 2 || capped.CurrentLP != 2 {
		t.Fatalf("capped demand %+v, want CurrentLP=DesiredLP=2", capped)
	}
	if !capped.Valid {
		t.Fatal("capping must preserve validity")
	}

	// A demand already under the cap is untouched.
	small := NodeDemand(NodeReport{LP: 1, Active: 1, Queued: 0, MaxLP: 4})
	if got := CapDemand(small, 3); got != small {
		t.Fatalf("under-cap demand changed: %+v vs %+v", got, small)
	}

	// cap < 1 floors at one: probation never starves a node entirely.
	floored := CapDemand(d, 0)
	if floored.DesiredLP != 1 || floored.CurrentLP != 1 {
		t.Fatalf("floored demand %+v, want 1/1", floored)
	}
}
