package core

import (
	"time"

	"skandium/internal/adg"
	"skandium/internal/estimate"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// PredictorInput is everything a WCT predictor may consult at analysis
// time.
type PredictorInput struct {
	Node    *skel.Node
	Tracker *statemachine.Tracker
	Est     *estimate.Registry
	Start   time.Time
	Now     time.Time
	// Budget caps analysis cost for graph-based predictors (0 = default).
	Budget int
}

// Prediction is one analysis snapshot. Its closures are only valid until
// the next analysis and must be used from a single goroutine.
type Prediction struct {
	// LimitedEnd predicts the completion time under a fixed LP.
	LimitedEnd func(lp int) time.Time
	// BestEnd is the completion time under infinite parallelism.
	BestEnd time.Time
	// OptimalLP is the smallest LP that achieves BestEnd (approximately,
	// for analytic predictors).
	OptimalLP int
	// MinLP returns the smallest lp <= ceil meeting the deadline, if any.
	MinLP func(deadline time.Time, ceil int) (int, bool)
}

// Predictor turns execution state into WCT predictions. The paper's §6
// lists "analyses of different WCT estimation algorithms comparing its
// overhead costs" as ongoing work; this interface is where the variants
// plug in.
type Predictor interface {
	// Name identifies the predictor in logs and benchmarks.
	Name() string
	// Predict produces a snapshot, or an error when estimation is not
	// possible yet (missing estimates, nothing started).
	Predict(in PredictorInput) (*Prediction, error)
}

// --- ADG predictor (the paper's algorithm) --------------------------------------

// ADGPredictor implements the paper's estimation: build the Activity
// Dependency Graph of the live execution, list-schedule it under candidate
// LPs, and read the optimal LP off the best-effort timeline. Most accurate,
// cost grows with the remaining structure (bounded by Budget).
type ADGPredictor struct{}

// Name implements Predictor.
func (ADGPredictor) Name() string { return "adg" }

// Predict implements Predictor.
func (ADGPredictor) Predict(in PredictorInput) (*Prediction, error) {
	builder := adg.Builder{Est: in.Est, Budget: in.Budget}
	var g *adg.Graph
	var err error
	// Build under the tracker's lock: workers mutate the instance tree on
	// every event, so the snapshot must be consistent.
	in.Tracker.WithTree(func(roots []*statemachine.Instance) {
		if len(roots) == 0 {
			err = errNoRoot
			return
		}
		g, err = builder.BuildLive(roots[0], in.Start, in.Now)
	})
	if err != nil {
		return nil, err
	}
	g.ScheduleBestEffort()
	bestEnd := g.EndTime()
	optimal := adg.Peak(g.Timeline(), in.Now)
	if optimal < 1 {
		optimal = 1
	}
	return &Prediction{
		LimitedEnd: func(lp int) time.Time {
			g.ScheduleLimited(lp)
			return g.EndTime()
		},
		BestEnd:   bestEnd,
		OptimalLP: optimal,
		MinLP: func(deadline time.Time, ceil int) (int, bool) {
			return g.MinLPForGoal(deadline, ceil)
		},
	}, nil
}

// --- work/span predictor (cheap analytic variant) --------------------------------

// WorkSpanPredictor is the O(|∆|) analytic alternative: it models the
// remaining computation by two scalars — work (total sequential time left)
// and span (critical path left) — and predicts via Brent's bound
//
//	T(lp) ≈ max(span, work/lp).
//
// Remaining work is the analytic sequential estimate minus the muscle time
// already observed; remaining span assumes the critical path advanced at
// wall-clock rate. Far cheaper than the ADG and correspondingly cruder: it
// ignores dependency shapes, so it can both under- and over-estimate.
// This is the "sequential work + parallel penalty" family of Lobachev et
// al. that the paper's related work contrasts with the ADG.
type WorkSpanPredictor struct{}

// Name implements Predictor.
func (WorkSpanPredictor) Name() string { return "workspan" }

// Predict implements Predictor.
func (WorkSpanPredictor) Predict(in PredictorInput) (*Prediction, error) {
	work, err := adg.SeqEstimate(in.Est, in.Node)
	if err != nil {
		return nil, err
	}
	span, err := adg.SpanEstimate(in.Est, in.Node)
	if err != nil {
		return nil, err
	}
	observed := in.Tracker.ObservedWork()
	elapsed := in.Now.Sub(in.Start)
	remWork := work - observed
	if remWork < 0 {
		remWork = 0
	}
	remSpan := span - elapsed
	if remSpan < 0 {
		remSpan = 0
	}
	limited := func(lp int) time.Time {
		if lp < 1 {
			lp = 1
		}
		t := remWork / time.Duration(lp)
		if remSpan > t {
			t = remSpan
		}
		return in.Now.Add(t)
	}
	optimal := 1
	if remSpan > 0 {
		optimal = int((remWork + remSpan - 1) / remSpan)
	} else if remWork > 0 {
		optimal = 64 // span exhausted but work remains: saturate
	}
	if optimal < 1 {
		optimal = 1
	}
	return &Prediction{
		LimitedEnd: limited,
		BestEnd:    in.Now.Add(remSpan),
		OptimalLP:  optimal,
		MinLP: func(deadline time.Time, ceil int) (int, bool) {
			if ceil < 1 {
				ceil = 1
			}
			budget := deadline.Sub(in.Now)
			if budget < remSpan || budget <= 0 {
				return ceil, false
			}
			if remWork == 0 {
				return 1, true
			}
			lp := int((remWork + budget - 1) / budget)
			if lp < 1 {
				lp = 1
			}
			if lp > ceil {
				// work/ceil might still fit if span dominates.
				if !limited(ceil).After(deadline) {
					return ceil, true
				}
				return ceil, false
			}
			return lp, true
		},
	}, nil
}

var (
	_ Predictor = ADGPredictor{}
	_ Predictor = WorkSpanPredictor{}
)
