// Package core implements the paper's autonomic controller: the component
// that watches a skeleton execution through its events, estimates the
// remaining wall-clock time with the ADG, and adapts the level of
// parallelism (LP) so a WCT quality-of-service goal is met — increasing LP
// eagerly to the optimal level when the goal would be missed, decreasing it
// conservatively (by halving) when the goal survives with fewer threads.
package core

import (
	"fmt"
	"sync"
	"time"

	"skandium/internal/adg"
	"skandium/internal/clock"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// LPControl abstracts the resource lever: the real engine's pool and the
// simulator's scheduler both implement it.
type LPControl interface {
	// LP returns the current level-of-parallelism target.
	LP() int
	// SetLP requests a new target (implementations clamp to their caps).
	SetLP(n int)
}

// IncreasePolicy selects how a missed goal raises LP.
type IncreasePolicy int

// Increase policies.
const (
	// IncreaseOptimal is the paper's behaviour: jump to the optimal LP,
	// i.e. the peak of the best-effort timeline ("Skandium will
	// autonomically increase LP to 3").
	IncreaseOptimal IncreasePolicy = iota
	// IncreaseMinimal raises LP only to the smallest value whose
	// limited-LP schedule meets the goal (ablation variant; the paper
	// notes the exact problem is NP-complete).
	IncreaseMinimal
)

// DecreasePolicy selects how a comfortably met goal lowers LP.
type DecreasePolicy int

// Decrease policies.
const (
	// DecreaseHalve is the paper's behaviour: "first checks if the goal
	// could be targeted using half of threads; if it can, it decreases the
	// number of threads to the half". Deliberately slower than increase.
	DecreaseHalve DecreasePolicy = iota
	// DecreaseNone never lowers LP (ablation variant).
	DecreaseNone
	// DecreaseExact lowers LP directly to the minimal value that still
	// meets the goal (ablation variant).
	DecreaseExact
)

// Config tunes a Controller.
type Config struct {
	// WCTGoal is the wall-clock-time QoS measured from execution start.
	// Zero disables WCT-driven adaptation (the controller still records
	// analyses).
	WCTGoal time.Duration
	// MaxLP is the level-of-parallelism QoS cap; 0 means uncapped.
	MaxLP int
	// AnalysisInterval throttles how often event-triggered analyses may
	// run. Zero analyses on every qualifying event (the paper's "react as
	// soon as we detect" behaviour; fine for coarse muscles).
	AnalysisInterval time.Duration
	// Increase / Decrease select the paper rule's adaptation variants
	// (paper defaults). Only consulted when Policy is nil.
	Increase IncreasePolicy
	Decrease DecreasePolicy
	// Policy replaces the adaptation rule entirely (see Policy and
	// NewPolicy). nil means the paper rule configured by Increase/Decrease.
	// A stateful policy value must not be shared across concurrently
	// executing controllers — callers fanning one configured value out to
	// several controllers replicate it with ClonePolicy first.
	Policy Policy
	// ADGBudget caps ADG size (0 = adg.DefaultBudget).
	ADGBudget int
	// Predictor selects the WCT estimation algorithm (nil = the paper's
	// ADGPredictor; WorkSpanPredictor is the cheap analytic variant).
	Predictor Predictor
	// DecreaseHold suppresses decreases for this long after an increase,
	// damping the raise/halve oscillation that per-event analyses can
	// produce when estimates are still settling. Zero keeps the paper's
	// undamped behaviour. The hold is clamped by decision sequence, not
	// wall time alone: a decrease additionally needs at least one completed
	// analysis at an instant strictly after the increase, so a virtual
	// clock jumping past the window in one event batch (AnalysisInterval
	// zero, events sharing a timestamp) still gets one damped analysis
	// instead of none.
	DecreaseHold time.Duration
}

// unreachableSlack is the tolerated overshoot (relative to the remaining
// best-effort time) when a goal cannot be met at all: the controller then
// settles for the cheapest LP landing within this margin of the best
// achievable end instead of burning peak parallelism for microseconds.
const unreachableSlack = 0.05

// errNoRoot gates analyses before the outermost skeleton has activated.
var errNoRoot = fmt.Errorf("core: no root activation yet")

// Decision records one adaptation (or explicit non-adaptation) for
// experiment harnesses and debugging.
type Decision struct {
	Time         time.Time
	OldLP        int
	NewLP        int
	PredictedWCT time.Duration // limited-LP(OldLP) estimate at analysis time
	BestWCT      time.Duration // best-effort estimate
	OptimalLP    int
	Reason       string
}

// String renders the decision compactly.
func (d Decision) String() string {
	return fmt.Sprintf("[%v] lp %d->%d (pred=%v best=%v opt=%d): %s",
		d.Time, d.OldLP, d.NewLP, d.PredictedWCT, d.BestWCT, d.OptimalLP, d.Reason)
}

// Demand is the controller's latest resource wish, the per-job face a
// machine-wide budget arbiter reads: how many workers this job wants
// (uncapped by any external grant) and how badly it is missing its goal.
type Demand struct {
	// Valid is false until the first complete analysis has run (estimates
	// still warming up).
	Valid bool
	// Time is when the analysis producing this demand ran.
	Time time.Time
	// CurrentLP is the lever's level of parallelism at analysis time (the
	// externally capped, actual value).
	CurrentLP int
	// DesiredLP is the LP the controller wants under its own policies and
	// MaxLP QoS, ignoring external caps.
	DesiredLP int
	// OptimalLP is the peak of the best-effort timeline.
	OptimalLP int
	// PredictedWCT is the estimated wall-clock time at CurrentLP.
	PredictedWCT time.Duration
	// BestWCT is the best-effort (unbounded LP) estimate.
	BestWCT time.Duration
	// Goal is the WCT goal in force at analysis time.
	Goal time.Duration
	// Overshoot is predicted end minus deadline: positive means the goal
	// will be missed at the current LP — the arbiter's severity key.
	Overshoot time.Duration
	// Finished reports whether the execution has completed.
	Finished bool
}

// Controller is the autonomic manager of one execution. Wire it after the
// tracker on the same event registry (Attach does both in order), so state
// machines observe an event before the controller analyses it.
type Controller struct {
	node    *skel.Node
	lever   LPControl
	est     *estimate.Registry
	tracker *statemachine.Tracker
	clk     clock.Clock

	reqDur  []muscle.ID
	reqCard []muscle.ID

	// anMu serializes analyses and guards gateOpen/memo. Kept separate from
	// mu so Demand/Decisions readers never wait behind an ADG build, and so
	// the memoized Prediction's closures (single-goroutine by contract) are
	// only ever exercised by one analysis at a time.
	anMu     sync.Mutex
	gateOpen bool
	memo     *analysisMemo

	mu           sync.Mutex
	cfg          Config // goal and MaxLP are adjustable at runtime
	start        time.Time
	started      bool
	finished     bool
	last         time.Time
	hasLast      bool
	lastIncrease time.Time
	hasIncrease  bool
	postIncAn    int // completed analyses strictly after lastIncrease
	lastWant     int // last LP target handed to the lever (0 = none yet)
	demand       Demand
	decisions    []Decision
	analyses     int
}

// NewController builds a controller for an execution of node. est and
// tracker must be the pair also registered on the execution's events; clk
// must be the execution's clock.
func NewController(cfg Config, node *skel.Node, lever LPControl, est *estimate.Registry, tracker *statemachine.Tracker, clk clock.Clock) *Controller {
	if node == nil || lever == nil || est == nil || tracker == nil {
		panic("core: NewController with nil dependency")
	}
	if clk == nil {
		clk = clock.System
	}
	dur, card := adg.RequiredEstimates(node)
	return &Controller{
		cfg:     cfg,
		node:    node,
		lever:   lever,
		est:     est,
		tracker: tracker,
		clk:     clk,
		reqDur:  dur,
		reqCard: card,
	}
}

// Attach registers tracker then controller on reg, preserving the required
// order, and marks the execution start time.
func Attach(reg *event.Registry, tracker *statemachine.Tracker, c *Controller) {
	reg.Add(tracker.Listener())
	reg.Add(c.Listener())
}

// SetStart fixes the execution start the WCT goal is measured from. When
// not called, the first observed event's timestamp is used.
func (c *Controller) SetStart(t time.Time) {
	c.mu.Lock()
	c.start, c.started = t, true
	c.mu.Unlock()
}

// SetGoal adjusts the WCT goal at runtime (still measured from the original
// execution start). A non-positive goal suspends adaptation.
func (c *Controller) SetGoal(d time.Duration) {
	c.mu.Lock()
	c.cfg.WCTGoal = d
	c.mu.Unlock()
}

// SetMaxLP adjusts the LP QoS cap at runtime (0 = uncapped). It bounds what
// the controller will request; pair it with the lever's own cap to also
// shrink an already granted level.
func (c *Controller) SetMaxLP(n int) {
	c.mu.Lock()
	if n < 0 {
		n = 0
	}
	c.cfg.MaxLP = n
	c.mu.Unlock()
}

// Goal returns the WCT goal currently in force.
func (c *Controller) Goal() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.WCTGoal
}

// Demand returns the controller's latest resource wish for budget
// arbitration. CurrentLP and Finished are always fresh; the estimate fields
// carry the last completed analysis (Valid=false before the first one).
func (c *Controller) Demand() Demand {
	c.mu.Lock()
	d := c.demand
	d.Finished = c.finished
	c.mu.Unlock()
	d.CurrentLP = c.lever.LP()
	return d
}

// Listener returns the event hook that triggers analyses. Only After events
// qualify: they are the moments knowledge changes (a muscle finished, a
// split cardinality became known).
func (c *Controller) Listener() event.Listener {
	return event.Func(func(e *event.Event) any {
		if e.Err != nil {
			// Failed attempts carry no new timing knowledge, but a terminal
			// fault changes the plan (a branch just vanished or got
			// substituted), so it is worth re-analyzing.
			if e.Where == event.Fault {
				c.maybeAnalyze(e.Time)
			}
			return e.Param
		}
		c.noteStart(e.Time)
		if e.When == event.After {
			c.maybeAnalyze(e.Time)
			c.noteRootDone(e)
		}
		return e.Param
	})
}

func (c *Controller) noteStart(t time.Time) {
	c.mu.Lock()
	if !c.started {
		c.start, c.started = t, true
	}
	c.mu.Unlock()
}

func (c *Controller) noteRootDone(e *event.Event) {
	if e.Where == event.Skeleton && e.Parent == event.NoParent {
		c.mu.Lock()
		c.finished = true
		c.mu.Unlock()
	}
}

func (c *Controller) maybeAnalyze(now time.Time) {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	if c.hasLast && c.cfg.AnalysisInterval > 0 && now.Sub(c.last) < c.cfg.AnalysisInterval {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	if c.Analyze(now) {
		// Only completed analyses consume the interval: attempts gated on
		// incomplete estimates must not delay the first real analysis.
		c.mu.Lock()
		c.last, c.hasLast = now, true
		c.mu.Unlock()
	}
}

// StartTicker launches a background goroutine that re-analyzes every d,
// independent of events. Event-driven analysis reacts when knowledge
// changes; the ticker additionally reacts when *time* changes — e.g. a
// muscle overrunning its estimate produces no events, but the ADG's
// "tf = max(ti + t(m), now)" rule pushes the prediction out as the clock
// advances, which a periodic analysis can catch mid-muscle. Returns a stop
// function; the ticker also stops itself once the execution finishes.
// Only meaningful on real-time clocks (the simulator drives analyses from
// virtual-time events instead).
func (c *Controller) StartTicker(d time.Duration) (stop func()) {
	if d <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	stop = func() { once.Do(func() { close(done) }) }
	go func() {
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.mu.Lock()
				finished := c.finished
				c.mu.Unlock()
				if finished {
					return
				}
				c.Analyze(c.clk.Now())
			}
		}
	}()
	return stop
}

// Analyses returns how many full analyses have run.
func (c *Controller) Analyses() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.analyses
}

// Decisions returns a copy of the adaptation log.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.decisions...)
}

// analysisMemo is one cached predictor snapshot together with the inputs
// it was computed from. Versions are read before predicting, so an equal
// (estVer, topoVer) on a later analysis proves the knowledge base did not
// change in between — at worst the memo is newer than its key (a wasted
// recompute next time), never staler.
type analysisMemo struct {
	estVer  uint64
	topoVer uint64
	start   time.Time
	now     time.Time
	budget  int
	pred    *Prediction
}

// memoLimited wraps a Prediction's LimitedEnd with a per-LP cache: graph
// predictors reschedule the whole ADG per call, and analyses repeatedly ask
// for the same handful of LPs (current, half, minimal-search probes).
func memoLimited(f func(int) time.Time) func(int) time.Time {
	cache := make(map[int]time.Time, 4)
	return func(lp int) time.Time {
		if t, ok := cache[lp]; ok {
			return t
		}
		t := f(lp)
		cache[lp] = t
		return t
	}
}

// Analyze runs one full estimation/adaptation cycle at time now and
// reports whether the analysis actually ran (false while gated on missing
// estimates). It is normally invoked from the event listener but is
// exported for tests, the simulator and external schedulers.
func (c *Controller) Analyze(now time.Time) bool {
	c.mu.Lock()
	cfg := c.cfg // goal/MaxLP may be adjusted at runtime; analyze a snapshot
	start := c.start
	c.mu.Unlock()
	if cfg.WCTGoal <= 0 {
		return false
	}
	c.anMu.Lock()
	defer c.anMu.Unlock()
	// Gate: all muscles observed or initialized (the paper's "wait until
	// all muscles have been executed at least once"). Estimates are never
	// forgotten, so the gate is monotone: once open the scan is skipped.
	if !c.gateOpen {
		if !c.est.Complete(c.reqDur, c.reqCard) {
			return false
		}
		c.gateOpen = true
	}

	predictor := cfg.Predictor
	if predictor == nil {
		predictor = ADGPredictor{}
	}
	// Versions are read before predicting (see analysisMemo). When neither
	// the estimates nor the activation tree changed since the last analysis
	// at the same instant — common in virtual-time runs, where one event
	// batch shares a timestamp — the previous schedule is still exact and
	// the ADG build is skipped entirely. now must be part of the key: live
	// builds clamp running activities by elapsed wall-clock time.
	estVer := c.est.Version()
	topoVer := c.tracker.Version()
	var pred *Prediction
	if m := c.memo; m != nil && m.estVer == estVer && m.topoVer == topoVer &&
		m.start.Equal(start) && m.now.Equal(now) && m.budget == cfg.ADGBudget {
		pred = m.pred
	} else {
		p, err := predictor.Predict(PredictorInput{
			Node:    c.node,
			Tracker: c.tracker,
			Est:     c.est,
			Start:   start,
			Now:     now,
			Budget:  cfg.ADGBudget,
		})
		if err != nil {
			return false // not started yet, or estimates raced away; retry later
		}
		p.LimitedEnd = memoLimited(p.LimitedEnd)
		pred = p
		c.memo = &analysisMemo{
			estVer: estVer, topoVer: topoVer,
			start: start, now: now, budget: cfg.ADGBudget,
			pred: pred,
		}
	}
	cur := c.lever.LP()
	deadline := start.Add(cfg.WCTGoal)

	predictedEnd := pred.LimitedEnd(cur)
	predicted := predictedEnd.Sub(start)
	best := pred.BestEnd.Sub(start)
	optimal := pred.OptimalLP

	// held is the decrease-damping window: no decreases until the hold has
	// expired in wall time AND at least one completed analysis ran at an
	// instant strictly after the increase (the decision-sequence clamp —
	// a virtual clock jumping past the window in one batch still yields
	// one damped analysis).
	c.mu.Lock()
	c.analyses++
	held := cfg.DecreaseHold > 0 && c.hasIncrease &&
		(now.Sub(c.lastIncrease) < cfg.DecreaseHold || c.postIncAn == 0)
	c.mu.Unlock()

	// desired is what this controller wants ignoring any external cap —
	// published via Demand for budget arbitration. It defaults to holding
	// the current level and is overwritten when a proposal is applied.
	desired := cur
	defer func() {
		c.mu.Lock()
		c.demand = Demand{
			Valid: true, Time: now,
			CurrentLP: cur, DesiredLP: desired, OptimalLP: optimal,
			PredictedWCT: predicted, BestWCT: best,
			Goal:      cfg.WCTGoal,
			Overshoot: predictedEnd.Sub(deadline),
		}
		// This analysis completed: it counts against the decision-sequence
		// hold clamp unless it shares the increase's own instant (apply may
		// just have moved lastIncrease to now, which also zeroes the count).
		if c.hasIncrease && now.After(c.lastIncrease) {
			c.postIncAn++
		}
		c.mu.Unlock()
	}()

	// One actuation API: the controller computes the prediction and the
	// envelope; the policy proposes. The paper rule is just the default
	// implementation of the same contract the competitors use.
	pol := cfg.Policy
	if pol == nil {
		pol = PaperPolicy{Increase: cfg.Increase, Decrease: cfg.Decrease}
	}
	prop := pol.Observe(pred, Actuation{
		CurLP: cur, MaxLP: cfg.MaxLP,
		Goal: cfg.WCTGoal, Start: start, Now: now,
		Held: held,
	})
	target := prop.LP
	if target < 1 {
		target = cur
	}
	if cfg.MaxLP > 0 && target > cfg.MaxLP {
		target = cfg.MaxLP
	}
	if held && target < cur {
		target = cur // damping window: decreases are ignored, whoever asks
	}
	if target != cur {
		desired = target
		c.apply(now, cur, target, predicted, best, optimal, prop.Reason)
	}
	if d := prop.Demand; d > 0 {
		if cfg.MaxLP > 0 && d > cfg.MaxLP {
			d = cfg.MaxLP
		}
		if held && d < cur {
			// The damping window holds the lever at cur; publishing a lower
			// wish would let the budget arbiter shrink the grant below the
			// held level, re-opening the decrease through arbitration.
			d = cur
		}
		desired = d
	}
	return true
}

func (c *Controller) apply(now time.Time, from, to int, predicted, best time.Duration, optimal int, reason string) {
	before := c.lever.LP()
	c.lever.SetLP(to)
	after := c.lever.LP()
	c.mu.Lock()
	if to > from {
		c.lastIncrease, c.hasIncrease = now, true
		c.postIncAn = 0
	}
	// Under an external cap the lever may clamp the request: the controller
	// keeps wishing for the same target analysis after analysis with no
	// actual change. Log that intent once, not on every cycle.
	if to == c.lastWant && after == before {
		c.mu.Unlock()
		return
	}
	c.lastWant = to
	c.decisions = append(c.decisions, Decision{
		Time: now, OldLP: from, NewLP: to,
		PredictedWCT: predicted, BestWCT: best, OptimalLP: optimal,
		Reason: reason,
	})
	c.mu.Unlock()
}
