package muscle

import (
	"errors"
	"strings"
	"testing"
)

func TestKindsAndCalls(t *testing.T) {
	e := NewExecute("e", func(p any) (any, error) { return p.(int) * 2, nil })
	if e.Kind() != Execute || e.Name() != "e" {
		t.Fatal("execute metadata")
	}
	if v, err := e.CallExecute(21); err != nil || v != 42 {
		t.Fatalf("call: %v/%v", v, err)
	}

	s := NewSplit("s", func(p any) ([]any, error) { return []any{1, 2}, nil })
	parts, err := s.CallSplit(nil)
	if err != nil || len(parts) != 2 {
		t.Fatalf("split: %v/%v", parts, err)
	}

	m := NewMerge("m", func(ps []any) (any, error) { return len(ps), nil })
	if v, err := m.CallMerge([]any{1, 2, 3}); err != nil || v != 3 {
		t.Fatalf("merge: %v/%v", v, err)
	}

	c := NewCondition("c", func(p any) (bool, error) { return p.(int) > 0, nil })
	if v, err := c.CallCondition(1); err != nil || !v {
		t.Fatalf("cond: %v/%v", v, err)
	}
}

func TestIDsUniqueAndStable(t *testing.T) {
	a := NewExecute("a", func(p any) (any, error) { return p, nil })
	b := NewExecute("b", func(p any) (any, error) { return p, nil })
	if a.ID() == b.ID() {
		t.Fatal("IDs collide")
	}
	if a.ID() != a.ID() {
		t.Fatal("ID not stable")
	}
}

func TestErrorsPassThrough(t *testing.T) {
	boom := errors.New("boom")
	e := NewExecute("e", func(p any) (any, error) { return nil, boom })
	if _, err := e.CallExecute(nil); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
}

func TestWrongKindCallPanics(t *testing.T) {
	e := NewExecute("e", func(p any) (any, error) { return p, nil })
	defer func() {
		if rec := recover(); rec == nil || !strings.Contains(rec.(string), "CallSplit") {
			t.Fatalf("want CallSplit panic, got %v", rec)
		}
	}()
	e.CallSplit(nil)
}

func TestNilFunctionPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"execute":   func() { NewExecute("x", nil) },
		"split":     func() { NewSplit("x", nil) },
		"merge":     func() { NewMerge("x", nil) },
		"condition": func() { NewCondition("x", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestString(t *testing.T) {
	e := NewExecute("count", func(p any) (any, error) { return p, nil })
	s := e.String()
	if !strings.HasPrefix(s, "count#") || !strings.HasSuffix(s, "(execute)") {
		t.Fatalf("String() = %q", s)
	}
	var nilM *Muscle
	if nilM.String() != "<nil muscle>" {
		t.Fatalf("nil String() = %q", nilM.String())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Execute: "execute", Split: "split", Merge: "merge", Condition: "condition",
	} {
		if k.String() != want {
			t.Errorf("%d: %q != %q", int(k), k.String(), want)
		}
	}
}
