// Package muscle defines the sequential building blocks of skeleton
// programs. Following the paper's terminology, "muscles" are the black-box
// pieces of business logic that a skeleton pattern orchestrates:
//
//	Execute   fe : P -> R          (seq)
//	Split     fs : P -> {R}        (map, fork, d&c)
//	Merge     fm : {P} -> R        (map, fork, d&c)
//	Condition fc : P -> bool       (while, if, d&c)
//
// The engine is type-erased internally (parameters travel as `any`); the
// public API at the module root wraps typed functions into these erased
// muscles. Every muscle carries a process-unique ID and a human-readable
// name: the ID is the key under which the estimator tracks t(m) and |m|, and
// the name appears in traces, ADG dumps and error messages.
package muscle

import (
	"fmt"
	"sync/atomic"
)

// Kind discriminates the four muscle flavours.
type Kind int

// Muscle kinds, in the order the paper introduces them.
const (
	Execute Kind = iota
	Split
	Merge
	Condition
)

// String returns the paper's name for the kind.
func (k Kind) String() string {
	switch k {
	case Execute:
		return "execute"
	case Split:
		return "split"
	case Merge:
		return "merge"
	case Condition:
		return "condition"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

var lastID atomic.Uint64

// ID uniquely identifies a muscle within the process. IDs are never reused.
type ID uint64

// Muscle is a type-erased sequential function with identity. Exactly one of
// the four function fields is non-nil, matching Kind.
type Muscle struct {
	id   ID
	name string
	kind Kind

	exec  func(any) (any, error)
	split func(any) ([]any, error)
	merge func([]any) (any, error)
	cond  func(any) (bool, error)
}

// NewExecute wraps an Execution muscle fe : P -> R.
func NewExecute(name string, fn func(any) (any, error)) *Muscle {
	if fn == nil {
		panic("muscle: NewExecute with nil function")
	}
	return &Muscle{id: ID(lastID.Add(1)), name: name, kind: Execute, exec: fn}
}

// NewSplit wraps a Split muscle fs : P -> {R}.
func NewSplit(name string, fn func(any) ([]any, error)) *Muscle {
	if fn == nil {
		panic("muscle: NewSplit with nil function")
	}
	return &Muscle{id: ID(lastID.Add(1)), name: name, kind: Split, split: fn}
}

// NewMerge wraps a Merge muscle fm : {P} -> R.
func NewMerge(name string, fn func([]any) (any, error)) *Muscle {
	if fn == nil {
		panic("muscle: NewMerge with nil function")
	}
	return &Muscle{id: ID(lastID.Add(1)), name: name, kind: Merge, merge: fn}
}

// NewCondition wraps a Condition muscle fc : P -> bool.
func NewCondition(name string, fn func(any) (bool, error)) *Muscle {
	if fn == nil {
		panic("muscle: NewCondition with nil function")
	}
	return &Muscle{id: ID(lastID.Add(1)), name: name, kind: Condition, cond: fn}
}

// Clone returns a muscle with the same function but a fresh identity (and
// optionally a new name; "" keeps the old one). Because estimates are keyed
// by muscle identity, cloning is how a caller gives the same code distinct
// t(m)/|m| histories — e.g. one split function used at two nesting levels
// with very different costs. The paper's Listing 1 reuses one object at
// both levels (blended estimates); cloning is the opt-out.
func (m *Muscle) Clone(name string) *Muscle {
	c := *m
	c.id = ID(lastID.Add(1))
	if name != "" {
		c.name = name
	}
	return &c
}

// ID returns the process-unique identity of the muscle.
func (m *Muscle) ID() ID { return m.id }

// Name returns the human-readable name given at construction.
func (m *Muscle) Name() string { return m.name }

// Kind returns the muscle flavour.
func (m *Muscle) Kind() Kind { return m.kind }

// String renders "name#id(kind)".
func (m *Muscle) String() string {
	if m == nil {
		return "<nil muscle>"
	}
	return fmt.Sprintf("%s#%d(%s)", m.name, m.id, m.kind)
}

// CallExecute invokes an Execute muscle. It panics if the muscle is of a
// different kind: that is a programming error in the engine, not user input.
func (m *Muscle) CallExecute(p any) (any, error) {
	if m.kind != Execute {
		panic(fmt.Sprintf("muscle: CallExecute on %s", m))
	}
	return m.exec(p)
}

// CallSplit invokes a Split muscle.
func (m *Muscle) CallSplit(p any) ([]any, error) {
	if m.kind != Split {
		panic(fmt.Sprintf("muscle: CallSplit on %s", m))
	}
	return m.split(p)
}

// CallMerge invokes a Merge muscle.
func (m *Muscle) CallMerge(ps []any) (any, error) {
	if m.kind != Merge {
		panic(fmt.Sprintf("muscle: CallMerge on %s", m))
	}
	return m.merge(ps)
}

// CallCondition invokes a Condition muscle.
func (m *Muscle) CallCondition(p any) (bool, error) {
	if m.kind != Condition {
		panic(fmt.Sprintf("muscle: CallCondition on %s", m))
	}
	return m.cond(p)
}
