package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skandium"
	"skandium/internal/chaos"
)

// countInvocations tallies every execution of the counting blueprint's cell
// muscle across all in-process workers sharing this test binary — the
// ground truth the exactly-once assertions compare against.
var countInvocations atomic.Int64

func init() {
	skandium.RegisterBlueprint(skandium.Blueprint{
		Name:        "remotetest-count",
		Description: "farm(map) of counting square cells, for exactly-once chaos tests",
		Defaults:    skandium.Params{"n": 8, "sleep_ms": 0},
		Remote:      skandium.JSONCodec[gridCell, int](),
		Build: func(p skandium.Params) (skandium.Runner, error) {
			n := p.Int("n", 8)
			sleep := p.Int("sleep_ms", 0)
			fs := skandium.NewSplit("cells", func(total int) ([]gridCell, error) {
				out := make([]gridCell, total)
				for i := range out {
					out[i] = gridCell{N: i, SleepMS: sleep}
				}
				return out, nil
			})
			fe := skandium.NewExec("countsquare", func(c gridCell) (int, error) {
				countInvocations.Add(1)
				if c.SleepMS > 0 {
					time.Sleep(time.Duration(c.SleepMS) * time.Millisecond)
				}
				return c.N * c.N, nil
			})
			fm := skandium.NewMerge("sum", func(parts []int) (int, error) {
				s := 0
				for _, v := range parts {
					s += v
				}
				return s, nil
			})
			return skandium.NewRunner(skandium.Farm(skandium.Map(fs, skandium.Seq(fe), fm)), n), nil
		},
	})
}

// eventLog collects node transitions thread-safely.
type eventLog struct {
	mu  sync.Mutex
	evs []NodeEvent
}

func (l *eventLog) add(ev NodeEvent) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *eventLog) snapshot() []NodeEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]NodeEvent(nil), l.evs...)
}

func (l *eventLog) has(pred func(NodeEvent) bool) bool {
	for _, ev := range l.snapshot() {
		if pred(ev) {
			return true
		}
	}
	return false
}

func waitCond(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterExactlyOnceUnderChaos is the acceptance scenario: a seeded
// chaos run with 20% RPC drops plus one partition/heal cycle must complete
// the job with every muscle invoked exactly once, and the node's
// down → probation → healthy transitions must show up in the event stream.
// Dropped requests never reach the worker (refused — the unambiguous
// failure), so the RPC retry layer and requeue-on-node-loss must account
// for every task exactly once with no dedup help needed.
func TestClusterExactlyOnceUnderChaos(t *testing.T) {
	countInvocations.Store(0)
	_, s1 := newTestWorker(t, WorkerConfig{LP: 2, MaxLP: 4})
	_, s2 := newTestWorker(t, WorkerConfig{LP: 2, MaxLP: 4})

	inj := chaos.NewNet(chaos.NetConfig{Seed: 12345, DropRate: 0.2})
	var log eventLog
	c, err := New(Config{
		Workers:       []string{s1.URL, s2.URL},
		Budget:        4,
		ProbeInterval: 20 * time.Millisecond,
		Rebalance:     20 * time.Millisecond,
		HTTPTimeout:   5 * time.Second,
		RPC:           RPCPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 7},
		Transport:     inj.Transport(nil),
		// The invocation-count assertion must not race a local drain pool
		// (a locally re-executed ambiguous task would be a false positive).
		NoDegrade:   true,
		OnNodeEvent: log.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One partition/heal cycle on worker 1, long enough for the failure
	// streak to retire the node mid-job.
	cutHost := strings.TrimPrefix(s1.URL, "http://")
	time.AfterFunc(50*time.Millisecond, func() { inj.Partition(cutHost) })
	time.AfterFunc(500*time.Millisecond, func() { inj.Heal(cutHost) })

	const n = 40
	res, err := c.Run("remotetest-count", skandium.Params{"n": n, "sleep_ms": 10})
	if err != nil {
		t.Fatalf("job failed under chaos: %v", err)
	}
	want := 0
	for i := 0; i < n; i++ {
		want += i * i
	}
	if res != want {
		t.Fatalf("result %v, want %d — a task was lost or double-merged", res, want)
	}
	if got := countInvocations.Load(); got != n {
		t.Fatalf("muscle invoked %d times for %d tasks — exactly-once violated", got, n)
	}

	// The partitioned node must have been retired with a classified cause...
	waitCond(t, "node-down transition in the event stream", 5*time.Second, func() bool {
		return log.has(func(ev NodeEvent) bool {
			return ev.To == StateDown && ev.Cause != "" && strings.Contains(ev.Addr, cutHost)
		})
	})
	// ...and re-admitted through probation after the heal.
	waitCond(t, "probation re-admission after heal", 5*time.Second, func() bool {
		return log.has(func(ev NodeEvent) bool {
			return ev.From == StateDown && ev.To == StateProbation && strings.Contains(ev.Addr, cutHost)
		})
	})
	waitCond(t, "both nodes healthy again", 5*time.Second, func() bool { return c.Healthy() == 2 })
	if st := inj.NetStats(); st.Drops == 0 || st.PartitionDrops == 0 {
		t.Fatalf("chaos did not bite: %+v", st)
	}
}

// TestClusterDedupAbsorbsAmbiguousReplays: reply drops are the ambiguous
// failure — the worker executed, the coordinator saw a timeout. The RPC
// layer replays against the same node and the worker's per-(job,seq) dedup
// slots must absorb every replay: the muscle count stays exact.
func TestClusterDedupAbsorbsAmbiguousReplays(t *testing.T) {
	countInvocations.Store(0)
	w, s := newTestWorker(t, WorkerConfig{LP: 2, MaxLP: 4})

	inj := chaos.NewNet(chaos.NetConfig{Seed: 4242, DropReplyRate: 0.4})
	c, err := New(Config{
		Workers:       []string{s.URL},
		Budget:        4,
		ProbeInterval: 20 * time.Millisecond,
		Rebalance:     20 * time.Millisecond,
		HTTPTimeout:   5 * time.Second,
		RPC:           RPCPolicy{MaxAttempts: 20, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 7},
		Transport:     inj.Transport(nil),
		NoDegrade:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 40
	res, err := c.Run("remotetest-count", skandium.Params{"n": n})
	if err != nil {
		t.Fatalf("job failed under reply-drop chaos: %v", err)
	}
	want := 0
	for i := 0; i < n; i++ {
		want += i * i
	}
	if res != want {
		t.Fatalf("result %v, want %d", res, want)
	}
	if got := countInvocations.Load(); got != n {
		t.Fatalf("muscle invoked %d times for %d tasks — worker dedup failed to absorb a replay", got, n)
	}
	if st := inj.NetStats(); st.ReplyDrops == 0 {
		t.Fatalf("chaos did not bite: %+v", st)
	}
	if w.Deduped() == 0 {
		t.Fatal("no replay hit the dedup cache despite dropped replies")
	}
}

// TestClusterProbationReadmission: a node that dies and returns re-earns
// trust through probation — with its arbiter share capped — before being
// promoted back to healthy. Runs the full real-HTTP path under -race.
func TestClusterProbationReadmission(t *testing.T) {
	w1 := NewWorker(WorkerConfig{LP: 2, MaxLP: 4})
	defer w1.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := &http.Server{Handler: w1.Handler()}
	go srv.Serve(ln)

	var log eventLog
	c, err := New(Config{
		Workers:       []string{addr},
		Budget:        8,
		ProbeInterval: 20 * time.Millisecond,
		Rebalance:     20 * time.Millisecond,
		Health:        HealthConfig{ProbationProbes: 4, ProbationCap: 1},
		OnNodeEvent:   log.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srv.Close()
	ln.Close()
	waitCond(t, "node down after listener close", 5*time.Second, func() bool {
		return log.has(func(ev NodeEvent) bool { return ev.To == StateDown })
	})
	if c.Serving() != 0 {
		t.Fatalf("down node still counted as serving")
	}

	// Same address, fresh process.
	w2 := NewWorker(WorkerConfig{LP: 3, MaxLP: 8})
	defer w2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv2 := &http.Server{Handler: w2.Handler()}
	go srv2.Serve(ln)
	defer func() { srv2.Close(); ln.Close() }()

	waitCond(t, "down→probation transition", 5*time.Second, func() bool {
		return log.has(func(ev NodeEvent) bool { return ev.From == StateDown && ev.To == StateProbation })
	})
	// While on probation the node's arbiter share is clamped to the
	// probation cap even though its pool could employ more.
	for _, n := range c.Nodes() {
		if n.State == "probation" && n.Grant > 1 {
			t.Fatalf("probation node granted %d, want <= cap of 1", n.Grant)
		}
	}
	waitCond(t, "probation→healthy promotion", 5*time.Second, func() bool {
		return log.has(func(ev NodeEvent) bool { return ev.From == StateProbation && ev.To == StateHealthy })
	})
	waitCond(t, "healthy count restored", 5*time.Second, func() bool { return c.Healthy() == 1 })
}

// TestWorkerAdmissionControl: a batch that would overflow the bounded task
// queue is shed atomically with 429 + Retry-After — nothing executes — and
// replays of known seqs are never shed, so a saturated worker still drains
// coordinator ambiguity.
func TestWorkerAdmissionControl(t *testing.T) {
	countInvocations.Store(0)
	w, s := newTestWorker(t, WorkerConfig{LP: 1, MaxQueue: 2})
	code, pr := postProgram(t, s.URL, ProgramRequest{
		Blueprint: "remotetest-count",
		Params:    map[string]any{"n": 8},
		Step:      1,
		Job:       "job-adm",
	})
	if code != http.StatusOK || !pr.OK {
		t.Fatalf("program load: %d %+v", code, pr)
	}

	postBatch := func(seqs ...int) (*http.Response, []TaskResponse) {
		t.Helper()
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, seq := range seqs {
			part, _ := json.Marshal(gridCell{N: seq})
			if err := enc.Encode(TaskRequest{Seq: seq, Part: part, Job: "job-adm"}); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := http.Post(s.URL+"/tasks", "application/x-ndjson", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []TaskResponse
		dec := json.NewDecoder(resp.Body)
		for {
			var tr TaskResponse
			if err := dec.Decode(&tr); err != nil {
				break
			}
			out = append(out, tr)
		}
		return resp, out
	}

	// 6 fresh tasks > MaxQueue 2: shed atomically, nothing executed.
	resp, rs := postBatch(0, 1, 2, 3, 4, 5)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After hint")
	}
	if len(rs) != 1 || rs[0].Seq != -1 || !strings.Contains(rs[0].Error, "saturated") {
		t.Fatalf("shed reply %+v, want a single seq=-1 saturation error", rs)
	}
	if got := countInvocations.Load(); got != 0 {
		t.Fatalf("shed batch executed %d muscles, want 0 — admission must be atomic", got)
	}
	if w.Shed() != 1 {
		t.Fatalf("shed counter %d, want 1", w.Shed())
	}

	// A batch within the bound executes.
	resp, rs = postBatch(0, 1)
	if resp.StatusCode != http.StatusOK || len(rs) != 2 {
		t.Fatalf("in-bound batch: %d, %d replies", resp.StatusCode, len(rs))
	}
	if got := countInvocations.Load(); got != 2 {
		t.Fatalf("invocations %d, want 2", got)
	}

	// Replaying known seqs adds no load: never shed, served from the cache.
	resp, rs = postBatch(0, 1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay got %d, want 200 — replays must never be shed", resp.StatusCode)
	}
	if got := countInvocations.Load(); got != 2 {
		t.Fatalf("replay re-executed muscles: %d invocations, want still 2", got)
	}
	if w.Deduped() != 2 {
		t.Fatalf("deduped %d, want 2", w.Deduped())
	}
}

// TestWorkerJobFencing: batches are fenced to their job epoch — a stale
// epoch is rejected with 409 and executes nothing; a new epoch resets the
// dedup slots so the same seq runs fresh.
func TestWorkerJobFencing(t *testing.T) {
	countInvocations.Store(0)
	_, s := newTestWorker(t, WorkerConfig{LP: 1})
	load := func(job string) {
		t.Helper()
		code, pr := postProgram(t, s.URL, ProgramRequest{
			Blueprint: "remotetest-count", Params: map[string]any{"n": 4}, Step: 1, Job: job,
		})
		if code != http.StatusOK || !pr.OK {
			t.Fatalf("program load: %d %+v", code, pr)
		}
	}
	post := func(job string, seq int) int {
		t.Helper()
		part, _ := json.Marshal(gridCell{N: seq})
		var buf bytes.Buffer
		_ = json.NewEncoder(&buf).Encode(TaskRequest{Seq: seq, Part: part, Job: job})
		resp, err := http.Post(s.URL+"/tasks", "application/x-ndjson", &buf)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	load("epoch-1")
	if code := post("epoch-0", 0); code != http.StatusConflict {
		t.Fatalf("stale epoch got %d, want 409", code)
	}
	if countInvocations.Load() != 0 {
		t.Fatal("fenced batch must execute nothing")
	}
	if code := post("epoch-1", 0); code != http.StatusOK {
		t.Fatalf("current epoch got %d, want 200", code)
	}
	if countInvocations.Load() != 1 {
		t.Fatalf("invocations %d, want 1", countInvocations.Load())
	}
	// Re-loading the same epoch preserves dedup state...
	load("epoch-1")
	if code := post("epoch-1", 0); code != http.StatusOK {
		t.Fatal("replay after same-epoch reload must serve from cache")
	}
	if countInvocations.Load() != 1 {
		t.Fatalf("same-epoch reload lost dedup state: %d invocations", countInvocations.Load())
	}
	// ...and a new epoch resets it.
	load("epoch-2")
	if code := post("epoch-2", 0); code != http.StatusOK {
		t.Fatal("fresh epoch post failed")
	}
	if countInvocations.Load() != 2 {
		t.Fatalf("new epoch must re-execute: %d invocations, want 2", countInvocations.Load())
	}
}

// TestClusterHedgesStragglers: a node that accepts a batch and then stalls
// forever must not stall the job — after HedgeAfter the claimed tasks are
// re-enqueued and a healthy node races them to completion.
func TestClusterHedgesStragglers(t *testing.T) {
	countInvocations.Store(0)
	_, good := newTestWorker(t, WorkerConfig{LP: 2, MaxLP: 4})

	// A black-hole worker: loads programs, reports healthy, accepts task
	// batches and never replies.
	hang := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true,"lp":1,"active":0,"queued":0,"max_lp":1}`)
	})
	mux.HandleFunc("POST /program", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true,"program":"farm(map)"}`)
	})
	mux.HandleFunc("POST /lp", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"lp":1}`)
	})
	mux.HandleFunc("POST /tasks", func(w http.ResponseWriter, r *http.Request) {
		<-hang
	})
	stall := httptest.NewServer(mux)
	// Unblock the black-hole handler before the server's Close waits for
	// outstanding requests to drain (defers run LIFO).
	defer stall.Close()
	defer close(hang)

	c, err := New(Config{
		Workers:       []string{good.URL, stall.URL},
		Budget:        8,
		ProbeInterval: 20 * time.Millisecond,
		Rebalance:     20 * time.Millisecond,
		HTTPTimeout:   30 * time.Second, // the stall must outlive the job
		HedgeAfter:    100 * time.Millisecond,
		NoDegrade:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 12
	done := make(chan struct{})
	var res any
	var runErr error
	go func() {
		res, runErr = c.Run("remotetest-count", skandium.Params{"n": n, "sleep_ms": 5})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("job stalled behind the black-hole worker despite hedging")
	}
	if runErr != nil {
		t.Fatalf("job failed: %v", runErr)
	}
	want := 0
	for i := 0; i < n; i++ {
		want += i * i
	}
	if res != want {
		t.Fatalf("result %v, want %d", res, want)
	}
	if c.Hedged() == 0 {
		t.Fatal("no task was hedged despite a stalled claim")
	}
}

// TestClusterDegradesToLocalPool: when the whole cluster browns out mid-job
// the remaining shards drain to the local pool instead of failing the job.
func TestClusterDegradesToLocalPool(t *testing.T) {
	w, s := newTestWorker(t, WorkerConfig{LP: 2, MaxLP: 4})
	_ = w

	var log eventLog
	c, err := New(Config{
		Workers:       []string{s.URL},
		Budget:        4,
		ProbeInterval: 20 * time.Millisecond,
		Rebalance:     20 * time.Millisecond,
		HTTPTimeout:   time.Second,
		RPC:           RPCPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		LocalLP:       4,
		OnNodeEvent:   log.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Kill the only worker shortly after the job starts.
	time.AfterFunc(60*time.Millisecond, s.CloseClientConnections)
	time.AfterFunc(70*time.Millisecond, s.Close)

	const n = 24
	res, err := c.Run("remotetest-grid", skandium.Params{"n": n, "sleep_ms": 20})
	if err != nil {
		t.Fatalf("job failed despite local degradation: %v", err)
	}
	if res != gridSum(n) {
		t.Fatalf("result %v, want %d", res, gridSum(n))
	}
	if c.Degraded() == 0 {
		t.Fatal("no task drained to the local pool")
	}
	if !log.has(func(ev NodeEvent) bool { return ev.Cause == "degrade" }) {
		t.Fatal("degradation must be announced in the event stream")
	}
}
