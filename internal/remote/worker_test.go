package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestWorker serves an in-process worker over real HTTP.
func newTestWorker(t *testing.T, cfg WorkerConfig) (*Worker, *httptest.Server) {
	t.Helper()
	w := NewWorker(cfg)
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(func() { srv.Close(); w.Close() })
	return w, srv
}

func postProgram(t *testing.T, url string, req ProgramRequest) (int, ProgramResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/program", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr ProgramResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, pr
}

// loadGrid loads the test grid program (fan-out at pre-order index 1,
// inside the farm wrap at index 0) onto the worker.
func loadGrid(t *testing.T, url string, n int) {
	t.Helper()
	code, pr := postProgram(t, url, ProgramRequest{
		Blueprint: "remotetest-grid",
		Params:    map[string]any{"n": n},
		Step:      1,
	})
	if code != http.StatusOK || !pr.OK {
		t.Fatalf("program load failed: %d %+v", code, pr)
	}
	if !strings.Contains(pr.Program, "farm") {
		t.Fatalf("worker echoed program %q, want the farm rendering", pr.Program)
	}
}

func TestWorkerUnknownBlueprint(t *testing.T) {
	_, srv := newTestWorker(t, WorkerConfig{})
	code, pr := postProgram(t, srv.URL, ProgramRequest{Blueprint: "no-such-blueprint"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", code)
	}
	if !strings.Contains(pr.Error, "unknown blueprint") {
		t.Fatalf("error %q does not name the unknown blueprint", pr.Error)
	}
}

func TestWorkerIneligibleBlueprint(t *testing.T) {
	_, srv := newTestWorker(t, WorkerConfig{})
	code, pr := postProgram(t, srv.URL, ProgramRequest{Blueprint: "remotetest-local"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", code)
	}
	if !strings.Contains(pr.Error, "not cluster-eligible") {
		t.Fatalf("error %q does not explain ineligibility", pr.Error)
	}
}

func TestWorkerBadStep(t *testing.T) {
	_, srv := newTestWorker(t, WorkerConfig{})
	// Out of range.
	code, pr := postProgram(t, srv.URL, ProgramRequest{Blueprint: "remotetest-grid", Step: 99})
	if code != http.StatusUnprocessableEntity || !strings.Contains(pr.Error, "out of range") {
		t.Fatalf("out-of-range step: %d %+v", code, pr)
	}
	// In range but not a fan-out (step 0 is the farm wrap).
	code, pr = postProgram(t, srv.URL, ProgramRequest{Blueprint: "remotetest-grid", Step: 0})
	if code != http.StatusUnprocessableEntity || !strings.Contains(pr.Error, "not a fan-out") {
		t.Fatalf("non-fan-out step: %d %+v", code, pr)
	}
}

func TestWorkerTasksBeforeProgram(t *testing.T) {
	_, srv := newTestWorker(t, WorkerConfig{})
	resp, err := http.Post(srv.URL+"/tasks", "application/x-ndjson",
		strings.NewReader(`{"seq":0,"part":{"N":1,"SleepMS":0}}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
}

func TestWorkerBatchHappyPath(t *testing.T) {
	_, srv := newTestWorker(t, WorkerConfig{LP: 4})
	loadGrid(t, srv.URL, 8)

	var buf bytes.Buffer
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&buf, `{"seq":%d,"part":{"N":%d,"SleepMS":0}}`+"\n", 10+i, i+1)
	}
	resp, err := http.Post(srv.URL+"/tasks", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	got := map[int]int{}
	for dec.More() {
		var tr TaskResponse
		if err := dec.Decode(&tr); err != nil {
			t.Fatal(err)
		}
		if tr.Error != "" {
			t.Fatalf("task %d errored: %s", tr.Seq, tr.Error)
		}
		var v int
		if err := json.Unmarshal(tr.Result, &v); err != nil {
			t.Fatal(err)
		}
		got[tr.Seq] = v
	}
	for i := 0; i < 4; i++ {
		n := i + 1
		if got[10+i] != n*n {
			t.Fatalf("task %d = %d, want %d (all: %v)", 10+i, got[10+i], n*n, got)
		}
	}
}

// TestWorkerTornFrame: a syntactically broken NDJSON line fails the batch
// atomically — clean HTTP 400, nothing executed, no panic.
func TestWorkerTornFrame(t *testing.T) {
	w, srv := newTestWorker(t, WorkerConfig{})
	loadGrid(t, srv.URL, 8)

	body := `{"seq":0,"part":{"N":1,"SleepMS":0}}` + "\n" + `{"seq":1,"part":{"N":` + "\n"
	resp, err := http.Post(srv.URL+"/tasks", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var tr TaskResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Error, "torn task frame") {
		t.Fatalf("error %q does not flag the torn frame", tr.Error)
	}
	if n := w.tasks.Load(); n != 0 {
		t.Fatalf("%d tasks ran from a torn batch, want 0", n)
	}
}

// TestWorkerOversizedFrame: a line beyond MaxFrame is rejected with a clean
// error instead of unbounded buffering.
func TestWorkerOversizedFrame(t *testing.T) {
	_, srv := newTestWorker(t, WorkerConfig{MaxFrame: 256})
	loadGrid(t, srv.URL, 8)

	huge := fmt.Sprintf(`{"seq":0,"part":{"N":1,"SleepMS":0},"pad":%q}`, strings.Repeat("x", 1024))
	resp, err := http.Post(srv.URL+"/tasks", "application/x-ndjson", strings.NewReader(huge+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var tr TaskResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Error, "exceeds") {
		t.Fatalf("error %q does not flag the oversized frame", tr.Error)
	}
}

// TestWorkerHealthReport: the probe carries the pool counters and the
// loaded blueprint.
func TestWorkerHealthReport(t *testing.T) {
	_, srv := newTestWorker(t, WorkerConfig{LP: 3, MaxLP: 7})
	loadGrid(t, srv.URL, 8)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Blueprint != "remotetest-grid" || h.LP != 3 || h.MaxLP != 7 {
		t.Fatalf("health %+v, want ok with blueprint remotetest-grid, lp 3, max 7", h)
	}
}

// TestWorkerLPGrant: an arbiter grant pushed over /lp moves the pool.
func TestWorkerLPGrant(t *testing.T) {
	w, srv := newTestWorker(t, WorkerConfig{LP: 1, MaxLP: 8})
	resp, err := http.Post(srv.URL+"/lp", "application/json", strings.NewReader(`{"lp":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := w.Report().LP; got != 5 {
		t.Fatalf("pool LP %d after grant, want 5", got)
	}
}
