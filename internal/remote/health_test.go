package remote

import "testing"

func step(t *testing.T, h *health, fail bool, wantFrom, wantTo NodeState) {
	t.Helper()
	var from, to NodeState
	if fail {
		from, to = h.fail()
	} else {
		from, to = h.ok()
	}
	if from != wantFrom || to != wantTo {
		t.Fatalf("transition %s→%s, want %s→%s", from, to, wantFrom, wantTo)
	}
	if h.State() != wantTo {
		t.Fatalf("State() = %s after transition to %s", h.State(), wantTo)
	}
}

// TestHealthDescentAndRecovery walks the full machine: healthy → suspect →
// down on consecutive failures, then re-admission through probation back to
// healthy.
func TestHealthDescentAndRecovery(t *testing.T) {
	h := newHealth(HealthConfig{}) // defaults: suspect after 1, down after 3, 2 probes
	step(t, h, true, StateHealthy, StateSuspect)
	step(t, h, true, StateSuspect, StateSuspect)
	step(t, h, true, StateSuspect, StateDown)
	if h.ConsecFails() != 3 {
		t.Fatalf("consec fails %d, want 3", h.ConsecFails())
	}
	// Recovery: first success re-admits on probation, second promotes.
	step(t, h, false, StateDown, StateProbation)
	step(t, h, false, StateProbation, StateHealthy)
	if h.ConsecFails() != 0 {
		t.Fatalf("consec fails %d after recovery, want 0", h.ConsecFails())
	}
}

// TestHealthSuspectRecoversDirectly: one success clears a suspect streak
// without passing through probation.
func TestHealthSuspectRecoversDirectly(t *testing.T) {
	h := newHealth(HealthConfig{})
	step(t, h, true, StateHealthy, StateSuspect)
	step(t, h, false, StateSuspect, StateHealthy)
}

// TestHealthProbationIsFragile: a single failure during probation demotes
// straight back to down — trust is re-earned, not granted.
func TestHealthProbationIsFragile(t *testing.T) {
	h := newHealth(HealthConfig{})
	for i := 0; i < 3; i++ {
		h.fail()
	}
	step(t, h, false, StateDown, StateProbation)
	step(t, h, true, StateProbation, StateDown)
	// And the probation progress is reset: recovery starts over.
	step(t, h, false, StateDown, StateProbation)
	step(t, h, false, StateProbation, StateHealthy)
}

// TestHealthFlappingNodeNeverPromotes: alternating ok/fail keeps a node
// cycling probation↔down, never reaching healthy — the flap damping the
// probation design exists for.
func TestHealthFlappingNodeNeverPromotes(t *testing.T) {
	h := newHealth(HealthConfig{})
	for i := 0; i < 3; i++ {
		h.fail()
	}
	for i := 0; i < 10; i++ {
		if _, to := h.ok(); to != StateProbation {
			t.Fatalf("flap round %d: ok moved to %s, want probation", i, to)
		}
		if _, to := h.fail(); to != StateDown {
			t.Fatalf("flap round %d: fail moved to %s, want down", i, to)
		}
	}
}

// TestHealthThresholdsConfigurable: custom thresholds shift the boundaries.
func TestHealthThresholdsConfigurable(t *testing.T) {
	h := newHealth(HealthConfig{SuspectAfter: 2, DownAfter: 5, ProbationProbes: 3})
	step(t, h, true, StateHealthy, StateHealthy) // 1 < SuspectAfter
	step(t, h, true, StateHealthy, StateSuspect) // 2
	step(t, h, true, StateSuspect, StateSuspect) // 3
	step(t, h, true, StateSuspect, StateSuspect) // 4
	step(t, h, true, StateSuspect, StateDown)    // 5
	step(t, h, false, StateDown, StateProbation)
	step(t, h, false, StateProbation, StateProbation)
	step(t, h, false, StateProbation, StateHealthy)
}

func TestNodeStateServing(t *testing.T) {
	for _, s := range []NodeState{StateHealthy, StateSuspect, StateProbation} {
		if !s.Serving() {
			t.Errorf("%s must serve", s)
		}
	}
	if StateDown.Serving() {
		t.Error("down must not serve")
	}
}
