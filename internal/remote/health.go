package remote

import "sync"

// NodeState is one worker's position in the coordinator's health state
// machine. It replaces the old binary healthy/down flag: transient noise
// moves a node to Suspect without retiring it, a persistently failing node
// goes Down (released from the arbiter, no new work), and a recovering node
// re-earns trust through Probation (admitted again, but with its LP share
// capped until enough consecutive probes succeed).
//
//	Healthy ──fail×SuspectAfter──▶ Suspect ──fail×DownAfter──▶ Down
//	   ▲                             │ ok                        │ ok
//	   │                             ▼                           ▼
//	   ◀──────ok×ProbationProbes── Probation ◀───────────────────┘
//	                                 │ fail
//	                                 ▼
//	                               Down
type NodeState int32

const (
	// StateHealthy: probes and dispatch succeed; full arbiter share.
	StateHealthy NodeState = iota
	// StateSuspect: some consecutive failures, below the down threshold.
	// The node keeps its grant and keeps serving — distrust is not
	// eviction — but the failure streak is visible in /metrics.
	StateSuspect
	// StateDown: the failure streak crossed DownAfter. Released from the
	// arbiter, receives no new work; its in-flight batch was requeued.
	StateDown
	// StateProbation: a down node answered a probe. Re-admitted to the
	// arbiter with a capped LP share until ProbationProbes consecutive
	// successes promote it back to Healthy; one failure demotes it
	// straight back to Down.
	StateProbation
)

// String names the state for events, metrics and logs.
func (s NodeState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	case StateProbation:
		return "probation"
	default:
		return "unknown"
	}
}

// Serving reports whether the coordinator ships work to a node in this
// state. Suspect and probation nodes still serve; only down nodes do not.
func (s NodeState) Serving() bool { return s != StateDown }

// HealthConfig tunes the per-node state machine thresholds.
type HealthConfig struct {
	// SuspectAfter is the consecutive-failure count that moves a healthy
	// node to suspect (default 1: the first failure is already suspicious).
	SuspectAfter int
	// DownAfter is the consecutive-failure count that retires a node
	// (default 3). Must be >= SuspectAfter.
	DownAfter int
	// ProbationProbes is how many consecutive successes a probation node
	// needs to be promoted back to healthy (default 2).
	ProbationProbes int
	// ProbationCap clamps the node's arbiter LP share while in probation
	// (default 1): a re-admitted node proves itself on a trickle before
	// the budget flows back.
	ProbationCap int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.SuspectAfter < 1 {
		c.SuspectAfter = 1
	}
	if c.DownAfter < c.SuspectAfter {
		c.DownAfter = c.SuspectAfter + 2
	}
	if c.ProbationProbes < 1 {
		c.ProbationProbes = 2
	}
	if c.ProbationCap < 1 {
		c.ProbationCap = 1
	}
	return c
}

// health is one node's failure-streak tracker and state machine. All
// transitions flow through fail/ok so the state, the streak and the
// probation progress can never disagree.
type health struct {
	cfg HealthConfig

	mu          sync.Mutex
	state       NodeState
	consecFails int
	okProbes    int // consecutive successes while in probation
}

func newHealth(cfg HealthConfig) *health {
	return &health{cfg: cfg.withDefaults()}
}

// State returns the current state.
func (h *health) State() NodeState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// ConsecFails returns the current consecutive-failure streak.
func (h *health) ConsecFails() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.consecFails
}

// fail records one failed interaction (probe or exhausted dispatch RPC) and
// returns the transition it caused (from == to when nothing changed).
func (h *health) fail() (from, to NodeState) {
	h.mu.Lock()
	defer h.mu.Unlock()
	from = h.state
	h.consecFails++
	h.okProbes = 0
	switch h.state {
	case StateHealthy, StateSuspect:
		if h.consecFails >= h.cfg.DownAfter {
			h.state = StateDown
		} else if h.consecFails >= h.cfg.SuspectAfter {
			h.state = StateSuspect
		}
	case StateProbation:
		// Trust is fragile during re-admission: one failure demotes.
		h.state = StateDown
	}
	return from, h.state
}

// ok records one successful interaction and returns the transition.
func (h *health) ok() (from, to NodeState) {
	h.mu.Lock()
	defer h.mu.Unlock()
	from = h.state
	h.consecFails = 0
	switch h.state {
	case StateSuspect:
		h.state = StateHealthy
	case StateDown:
		h.okProbes = 1
		if h.okProbes >= h.cfg.ProbationProbes {
			h.state = StateHealthy
		} else {
			h.state = StateProbation
		}
	case StateProbation:
		h.okProbes++
		if h.okProbes >= h.cfg.ProbationProbes {
			h.state = StateHealthy
		}
	}
	return from, h.state
}
