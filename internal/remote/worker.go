package remote

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"skandium"
	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/exec"
	"skandium/internal/plan"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// LP is the pool's initial level of parallelism (default 1); the
	// coordinator's arbiter grants adjust it over /lp.
	LP int
	// MaxLP caps the pool (0 = uncapped): the hard thread budget of the
	// machine the worker runs on, reported to the arbiter as the node cap.
	MaxLP int
	// MaxFrame bounds one NDJSON task line (default DefaultMaxFrame).
	MaxFrame int
	// MaxQueue bounds the task queue (0 = unbounded): a batch that would
	// push the queued-task count past it is shed with HTTP 429 and a
	// Retry-After hint instead of buffering without bound — the worker's
	// mirror of skelrund's -queue-max admission control.
	MaxQueue int
	// Clock substitutes the time source (tests).
	Clock clock.Clock
}

// Worker is one remote execution node: it holds a task pool, at most one
// loaded program, and serves the wire protocol. The interpretation path is
// the ordinary local one — exec.Root walking the compiled IR — so a worker
// executes tasks bit-for-bit like a local pool would.
//
// Execution is idempotent per job epoch: each (job, seq) runs its muscle at
// most once, however many times the coordinator retries the batch after an
// ambiguous failure (lost reply, torn response, timeout). Replays of a
// completed task are served from the slot cache; replays of an in-flight
// task wait on the original future.
type Worker struct {
	clk      clock.Clock
	pool     *exec.Pool
	maxFrame int
	maxQueue int
	tasks    atomic.Int64
	deduped  atomic.Int64
	shed     atomic.Int64

	mu        sync.Mutex
	blueprint string
	codec     *skandium.RemoteCodec
	body      *plan.Program
	job       string
	slots     map[int]*taskSlot
}

// taskSlot is the idempotency record of one (job, seq): the once gate
// guarantees the muscle starts at most once, and every request for the seq
// — original or replay — waits on the same future.
type taskSlot struct {
	once    sync.Once
	fut     *exec.Future
	err     error // part decode failure (deterministic, cached like a result)
	counted atomic.Bool
}

// run starts the slot's execution exactly once. sync.Once publishes fut/err
// to every concurrent caller.
func (s *taskSlot) run(w *Worker, codec *skandium.RemoteCodec, body *plan.Program, part json.RawMessage) {
	s.once.Do(func() {
		p, err := codec.DecodePart(part)
		if err != nil {
			s.err = fmt.Errorf("decode part: %w", err)
			return
		}
		s.fut = exec.NewRoot(w.pool, nil, w.clk).StartProgram(body, p)
	})
}

// get waits for the slot's outcome.
func (s *taskSlot) get() (any, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.fut.Get()
}

// NewWorker builds a worker node.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.LP < 1 {
		cfg.LP = 1
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	return &Worker{
		clk:      cfg.Clock,
		pool:     exec.NewPool(cfg.Clock, cfg.LP, cfg.MaxLP),
		maxFrame: cfg.MaxFrame,
		maxQueue: cfg.MaxQueue,
		slots:    map[int]*taskSlot{},
	}
}

// Close shuts the worker's pool down.
func (w *Worker) Close() { w.pool.Close() }

// Report snapshots the node state the health probe exposes.
func (w *Worker) Report() core.NodeReport {
	return core.NodeReport{
		LP:     w.pool.LP(),
		Active: w.pool.Active(),
		Queued: w.pool.QueueLen(),
		MaxLP:  w.pool.MaxLP(),
	}
}

// Deduped counts task requests served from the idempotency cache.
func (w *Worker) Deduped() int64 { return w.deduped.Load() }

// Shed counts batches refused with 429 under admission control.
func (w *Worker) Shed() int64 { return w.shed.Load() }

// Handler serves the worker wire protocol.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", w.handleHealth)
	mux.HandleFunc("POST /program", w.handleProgram)
	mux.HandleFunc("POST /tasks", w.handleTasks)
	mux.HandleFunc("POST /lp", w.handleLP)
	return mux
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	bp := w.blueprint
	w.mu.Unlock()
	rep := w.Report()
	writeJSON(rw, http.StatusOK, HealthResponse{
		OK: true, Blueprint: bp,
		LP: rep.LP, Active: rep.Active, Queued: rep.Queued, MaxLP: rep.MaxLP,
		Tasks: w.tasks.Load(), Deduped: w.deduped.Load(), Shed: w.shed.Load(),
	})
}

func (w *Worker) handleProgram(rw http.ResponseWriter, r *http.Request) {
	var req ProgramRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, ProgramResponse{Error: "malformed program request: " + err.Error()})
		return
	}
	rendered, err := w.load(req)
	if err != nil {
		writeJSON(rw, http.StatusUnprocessableEntity, ProgramResponse{Error: err.Error()})
		return
	}
	writeJSON(rw, http.StatusOK, ProgramResponse{OK: true, Program: rendered})
}

// load resolves the blueprint by registry name, rebuilds the skeleton,
// compiles it and pins the fan-out body as the task entry point. Unknown
// names and ineligible blueprints are clean errors — the coordinator sees
// them as a refusal, never as a worker crash. A new job epoch resets the
// dedup slots; re-loading the current epoch (a node rejoining mid-job)
// keeps them, so post-rejoin replays still dedup.
func (w *Worker) load(req ProgramRequest) (string, error) {
	bp, ok := skandium.LookupBlueprint(req.Blueprint)
	if !ok {
		return "", fmt.Errorf("unknown blueprint %q: not in this worker's registry", req.Blueprint)
	}
	if bp.Remote == nil {
		return "", fmt.Errorf("blueprint %q is not cluster-eligible: no remote codec", req.Blueprint)
	}
	runner, err := bp.Build(skandium.Params(req.Params))
	if err != nil {
		return "", fmt.Errorf("build %s: %w", req.Blueprint, err)
	}
	prog, err := plan.Of(runner.Node())
	if err != nil {
		return "", fmt.Errorf("compile %s: %w", req.Blueprint, err)
	}
	steps := prog.Steps()
	if req.Step < 0 || req.Step >= len(steps) {
		return "", fmt.Errorf("step %d out of range: program has %d steps", req.Step, len(steps))
	}
	fan := steps[req.Step]
	if fan.Op() != plan.OpFanOut {
		return "", fmt.Errorf("step %d is %s, not a fan-out", req.Step, fan.Op())
	}
	body, err := plan.Of(fan.Child(0).Node())
	if err != nil {
		return "", fmt.Errorf("compile fan-out body: %w", err)
	}
	w.mu.Lock()
	w.blueprint = req.Blueprint
	w.codec = bp.Remote
	w.body = body
	if w.job != req.Job {
		w.job = req.Job
		w.slots = map[int]*taskSlot{}
	}
	w.mu.Unlock()
	return runner.Program(), nil
}

// slotFor returns the dedup slot of seq, creating it on first sight. fresh
// reports whether the slot is new (its muscle has not been started).
func (w *Worker) slotFor(seq int) (s *taskSlot, fresh bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.slots[seq]
	if !ok {
		s = &taskSlot{}
		w.slots[seq] = s
	}
	return s, !ok
}

// handleTasks runs one NDJSON batch. The whole batch is parsed and
// validated before any task starts, so a torn or oversized frame, a job
// mismatch, or an admission shed fails the request atomically (nothing
// executed) and the coordinator can retry or requeue the batch without
// partial execution. Replayed tasks are served from the dedup slots.
func (w *Worker) handleTasks(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	codec, body, job := w.codec, w.body, w.job
	w.mu.Unlock()
	if body == nil {
		writeJSON(rw, http.StatusConflict, TaskResponse{Seq: -1, Error: "no program loaded"})
		return
	}

	var reqs []TaskRequest
	sc := bufio.NewScanner(r.Body)
	// The scanner's limit is max(maxFrame, cap(buf)), so the initial buffer
	// must not exceed the frame bound.
	initial := 64 << 10
	if initial > w.maxFrame {
		initial = w.maxFrame
	}
	sc.Buffer(make([]byte, 0, initial), w.maxFrame)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var tr TaskRequest
		if err := json.Unmarshal(line, &tr); err != nil {
			writeJSON(rw, http.StatusBadRequest, TaskResponse{Seq: -1, Error: "torn task frame: " + err.Error()})
			return
		}
		if tr.Job != "" && tr.Job != job {
			writeJSON(rw, http.StatusConflict, TaskResponse{Seq: -1,
				Error: fmt.Sprintf("job mismatch: batch is %q, loaded program is %q", tr.Job, job)})
			return
		}
		reqs = append(reqs, tr)
	}
	if err := sc.Err(); err != nil {
		msg := "reading task stream: " + err.Error()
		if errors.Is(err, bufio.ErrTooLong) {
			msg = fmt.Sprintf("task frame exceeds %d bytes", w.maxFrame)
		}
		writeJSON(rw, http.StatusBadRequest, TaskResponse{Seq: -1, Error: msg})
		return
	}

	// Admission control: count only tasks that would actually start —
	// replays of known seqs add no load and are never shed, so a saturated
	// worker still answers the retries that drain the coordinator's
	// ambiguity. The fresh count is conservative (slots are not created
	// yet), racing batches may both pass, which is the same soft bound the
	// daemon's queue shed accepts.
	if w.maxQueue > 0 {
		fresh := 0
		w.mu.Lock()
		for _, tr := range reqs {
			if _, ok := w.slots[tr.Seq]; !ok {
				fresh++
			}
		}
		w.mu.Unlock()
		if fresh > 0 && w.pool.QueueLen()+fresh > w.maxQueue {
			w.shed.Add(1)
			rw.Header().Set("Retry-After", "1")
			writeJSON(rw, http.StatusTooManyRequests, TaskResponse{Seq: -1,
				Error: fmt.Sprintf("task queue saturated (%d queued, max %d)", w.pool.QueueLen(), w.maxQueue)})
			return
		}
	}

	// Start (or attach to) every task's slot, then stream responses back in
	// request order: the pool provides the parallelism, the order keeps the
	// wire protocol trivially matchable.
	slots := make([]*taskSlot, len(reqs))
	for i, tr := range reqs {
		slot, freshSlot := w.slotFor(tr.Seq)
		if !freshSlot {
			w.deduped.Add(1)
		}
		slot.run(w, codec, body, tr.Part)
		slots[i] = slot
	}
	rw.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(rw)
	for i, tr := range reqs {
		resp := TaskResponse{Seq: tr.Seq}
		res, err := slots[i].get()
		if err == nil {
			var raw []byte
			raw, err = codec.EncodeResult(res)
			resp.Result = raw
		}
		if err != nil {
			resp.Error = err.Error()
		} else if slots[i].counted.CompareAndSwap(false, true) {
			w.tasks.Add(1)
		}
		_ = enc.Encode(resp)
		if f, ok := rw.(http.Flusher); ok {
			f.Flush()
		}
	}
}

func (w *Worker) handleLP(rw http.ResponseWriter, r *http.Request) {
	var req LPRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "malformed lp request: " + err.Error()})
		return
	}
	if req.LP < 1 {
		req.LP = 1
	}
	w.pool.SetLP(req.LP)
	writeJSON(rw, http.StatusOK, map[string]int{"lp": w.pool.LP()})
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}
