package remote

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"skandium"
	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/exec"
	"skandium/internal/plan"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// LP is the pool's initial level of parallelism (default 1); the
	// coordinator's arbiter grants adjust it over /lp.
	LP int
	// MaxLP caps the pool (0 = uncapped): the hard thread budget of the
	// machine the worker runs on, reported to the arbiter as the node cap.
	MaxLP int
	// MaxFrame bounds one NDJSON task line (default DefaultMaxFrame).
	MaxFrame int
	// Clock substitutes the time source (tests).
	Clock clock.Clock
}

// Worker is one remote execution node: it holds a task pool, at most one
// loaded program, and serves the wire protocol. The interpretation path is
// the ordinary local one — exec.Root walking the compiled IR — so a worker
// executes tasks bit-for-bit like a local pool would.
type Worker struct {
	clk      clock.Clock
	pool     *exec.Pool
	maxFrame int
	tasks    atomic.Int64

	mu        sync.Mutex
	blueprint string
	codec     *skandium.RemoteCodec
	body      *plan.Program
}

// NewWorker builds a worker node.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.LP < 1 {
		cfg.LP = 1
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	return &Worker{
		clk:      cfg.Clock,
		pool:     exec.NewPool(cfg.Clock, cfg.LP, cfg.MaxLP),
		maxFrame: cfg.MaxFrame,
	}
}

// Close shuts the worker's pool down.
func (w *Worker) Close() { w.pool.Close() }

// Report snapshots the node state the health probe exposes.
func (w *Worker) Report() core.NodeReport {
	return core.NodeReport{
		LP:     w.pool.LP(),
		Active: w.pool.Active(),
		Queued: w.pool.QueueLen(),
		MaxLP:  w.pool.MaxLP(),
	}
}

// Handler serves the worker wire protocol.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", w.handleHealth)
	mux.HandleFunc("POST /program", w.handleProgram)
	mux.HandleFunc("POST /tasks", w.handleTasks)
	mux.HandleFunc("POST /lp", w.handleLP)
	return mux
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	bp := w.blueprint
	w.mu.Unlock()
	rep := w.Report()
	writeJSON(rw, http.StatusOK, HealthResponse{
		OK: true, Blueprint: bp,
		LP: rep.LP, Active: rep.Active, Queued: rep.Queued, MaxLP: rep.MaxLP,
		Tasks: w.tasks.Load(),
	})
}

func (w *Worker) handleProgram(rw http.ResponseWriter, r *http.Request) {
	var req ProgramRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, ProgramResponse{Error: "malformed program request: " + err.Error()})
		return
	}
	rendered, err := w.load(req)
	if err != nil {
		writeJSON(rw, http.StatusUnprocessableEntity, ProgramResponse{Error: err.Error()})
		return
	}
	writeJSON(rw, http.StatusOK, ProgramResponse{OK: true, Program: rendered})
}

// load resolves the blueprint by registry name, rebuilds the skeleton,
// compiles it and pins the fan-out body as the task entry point. Unknown
// names and ineligible blueprints are clean errors — the coordinator sees
// them as a refusal, never as a worker crash.
func (w *Worker) load(req ProgramRequest) (string, error) {
	bp, ok := skandium.LookupBlueprint(req.Blueprint)
	if !ok {
		return "", fmt.Errorf("unknown blueprint %q: not in this worker's registry", req.Blueprint)
	}
	if bp.Remote == nil {
		return "", fmt.Errorf("blueprint %q is not cluster-eligible: no remote codec", req.Blueprint)
	}
	runner, err := bp.Build(skandium.Params(req.Params))
	if err != nil {
		return "", fmt.Errorf("build %s: %w", req.Blueprint, err)
	}
	prog, err := plan.Of(runner.Node())
	if err != nil {
		return "", fmt.Errorf("compile %s: %w", req.Blueprint, err)
	}
	steps := prog.Steps()
	if req.Step < 0 || req.Step >= len(steps) {
		return "", fmt.Errorf("step %d out of range: program has %d steps", req.Step, len(steps))
	}
	fan := steps[req.Step]
	if fan.Op() != plan.OpFanOut {
		return "", fmt.Errorf("step %d is %s, not a fan-out", req.Step, fan.Op())
	}
	body, err := plan.Of(fan.Child(0).Node())
	if err != nil {
		return "", fmt.Errorf("compile fan-out body: %w", err)
	}
	w.mu.Lock()
	w.blueprint = req.Blueprint
	w.codec = bp.Remote
	w.body = body
	w.mu.Unlock()
	return runner.Program(), nil
}

// handleTasks runs one NDJSON batch. The whole batch is parsed before any
// task starts, so a torn or oversized frame fails the request atomically
// (HTTP 400, nothing executed) and the coordinator can requeue the batch on
// another node without double execution.
func (w *Worker) handleTasks(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	codec, body := w.codec, w.body
	w.mu.Unlock()
	if body == nil {
		writeJSON(rw, http.StatusConflict, TaskResponse{Seq: -1, Error: "no program loaded"})
		return
	}

	var reqs []TaskRequest
	sc := bufio.NewScanner(r.Body)
	// The scanner's limit is max(maxFrame, cap(buf)), so the initial buffer
	// must not exceed the frame bound.
	initial := 64 << 10
	if initial > w.maxFrame {
		initial = w.maxFrame
	}
	sc.Buffer(make([]byte, 0, initial), w.maxFrame)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var tr TaskRequest
		if err := json.Unmarshal(line, &tr); err != nil {
			writeJSON(rw, http.StatusBadRequest, TaskResponse{Seq: -1, Error: "torn task frame: " + err.Error()})
			return
		}
		reqs = append(reqs, tr)
	}
	if err := sc.Err(); err != nil {
		status := http.StatusBadRequest
		msg := "reading task stream: " + err.Error()
		if errors.Is(err, bufio.ErrTooLong) {
			msg = fmt.Sprintf("task frame exceeds %d bytes", w.maxFrame)
		}
		writeJSON(rw, status, TaskResponse{Seq: -1, Error: msg})
		return
	}

	// Start every task on the pool, then stream responses back in request
	// order: the pool provides the parallelism, the order keeps the wire
	// protocol trivially matchable. One Root per task — a Root is one
	// execution (one future), exactly like one stream input locally.
	futs := make([]*exec.Future, len(reqs))
	errs := make([]error, len(reqs))
	for i, tr := range reqs {
		part, err := codec.DecodePart(tr.Part)
		if err != nil {
			errs[i] = fmt.Errorf("decode part: %w", err)
			continue
		}
		futs[i] = exec.NewRoot(w.pool, nil, w.clk).StartProgram(body, part)
	}
	rw.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(rw)
	for i, tr := range reqs {
		resp := TaskResponse{Seq: tr.Seq}
		var res any
		err := errs[i]
		if err == nil {
			res, err = futs[i].Get()
		}
		if err == nil {
			var raw []byte
			raw, err = codec.EncodeResult(res)
			resp.Result = raw
		}
		if err != nil {
			resp.Error = err.Error()
		} else {
			w.tasks.Add(1)
		}
		_ = enc.Encode(resp)
		if f, ok := rw.(http.Flusher); ok {
			f.Flush()
		}
	}
}

func (w *Worker) handleLP(rw http.ResponseWriter, r *http.Request) {
	var req LPRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "malformed lp request: " + err.Error()})
		return
	}
	if req.LP < 1 {
		req.LP = 1
	}
	w.pool.SetLP(req.LP)
	writeJSON(rw, http.StatusOK, map[string]int{"lp": w.pool.LP()})
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}
