package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"skandium"
	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/plan"
)

// NodeEvent reports a worker health transition — the coordinator's view of
// the cluster changing shape. The daemon threads these into the running
// remote jobs' event logs.
type NodeEvent struct {
	Addr string
	Up   bool
	Time time.Time
	Err  string
}

// Config describes the cluster a coordinator manages.
type Config struct {
	// Workers is the static endpoint list ("host:port" or full URLs).
	Workers []string
	// Budget is the cluster-wide LP budget the arbiter divides into
	// per-node grants (default: 4 × workers).
	Budget int
	// ProbeInterval paces the health probe loop (default 250ms).
	ProbeInterval time.Duration
	// Rebalance paces the arbiter's grant re-division (default 250ms).
	Rebalance time.Duration
	// HTTPTimeout bounds every worker round trip (default 10s).
	HTTPTimeout time.Duration
	// Clock stamps events and decisions (default system clock).
	Clock clock.Clock
	// OnNodeEvent observes health transitions (may be nil). Called from
	// probe and dispatch goroutines; must not block.
	OnNodeEvent func(NodeEvent)
}

// Cluster is the centralised coordinator: it discovers workers from the
// static endpoint list, health-probes them, shards fan-out tasks across the
// healthy ones with retry-on-node-loss rebalancing, and runs a cluster-wide
// core.ClusterArbiter so Σ per-node LP grants never exceeds the global
// budget. It implements core.LPControl — the lever is the number of enabled
// nodes, so the unchanged autonomic machinery can scale the cluster like it
// scales a thread pool (dist.Cluster's contract, now over real processes).
type Cluster struct {
	cfg    Config
	clk    clock.Clock
	arb    *core.ClusterArbiter
	client *http.Client

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	stopArb   func()

	evMu    sync.Mutex
	onEvent func(NodeEvent)

	// jobMu serialises remote jobs: a worker holds one program at a time,
	// so the coordinator ships one job's tasks at a time. Concurrent
	// eligible jobs queue here (see DESIGN §11).
	jobMu sync.Mutex

	mu      sync.Mutex
	nodes   []*node
	enabled int
	closed  bool
}

// node is the coordinator's proxy for one worker endpoint. It is the
// core.Member the cluster arbiter divides the budget over: Demand derives
// from the last probed report, Grant pushes the share to the worker's pool.
type node struct {
	addr   string
	client *http.Client

	mu      sync.Mutex
	healthy bool
	report  core.NodeReport
	lastErr string

	grant atomic.Int64
	tasks atomic.Int64
}

func (n *node) Demand() core.Demand {
	n.mu.Lock()
	rep := n.report
	n.mu.Unlock()
	return core.NodeDemand(rep)
}

func (n *node) Grant(g int) {
	if int64(g) == n.grant.Swap(int64(g)) {
		return
	}
	// Push asynchronously: grants are advisory pacing, the next probe
	// re-reads the truth, and the arbiter must never block on a slow node.
	go func() {
		body, _ := json.Marshal(LPRequest{LP: g})
		resp, err := n.client.Post(n.addr+"/lp", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
}

// NodeStatus is one worker's coordinator-side accounting, exported to
// skelrund's /metrics and /healthz.
type NodeStatus struct {
	Addr    string
	Healthy bool
	Enabled bool
	Grant   int
	Tasks   int64
	Report  core.NodeReport
	LastErr string
}

// New builds a coordinator over the configured workers, probes them once
// synchronously (so callers start with a live view), and starts the probe
// and rebalance loops.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("remote: no worker endpoints configured")
	}
	if cfg.Budget < 1 {
		cfg.Budget = 4 * len(cfg.Workers)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.Rebalance <= 0 {
		cfg.Rebalance = 250 * time.Millisecond
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	c := &Cluster{
		cfg:       cfg,
		clk:       cfg.Clock,
		arb:       core.NewClusterArbiter(cfg.Budget, cfg.Clock),
		client:    &http.Client{Timeout: cfg.HTTPTimeout},
		stopProbe: make(chan struct{}),
		enabled:   len(cfg.Workers),
		onEvent:   cfg.OnNodeEvent,
	}
	for _, addr := range cfg.Workers {
		if len(addr) < 7 || (addr[:7] != "http://" && (len(addr) < 8 || addr[:8] != "https://")) {
			addr = "http://" + addr
		}
		c.nodes = append(c.nodes, &node{addr: addr, client: c.client})
	}
	for _, n := range c.nodes {
		c.probeOne(n)
	}
	c.stopArb = c.arb.StartTicker(cfg.Rebalance)
	c.probeWG.Add(1)
	go c.probeLoop()
	return c, nil
}

// Close stops the probe and rebalance loops.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stopProbe)
	c.probeWG.Wait()
	c.stopArb()
}

func (c *Cluster) probeLoop() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopProbe:
			return
		case <-t.C:
			for _, n := range c.snapshotNodes() {
				c.probeOne(n)
			}
		}
	}
}

func (c *Cluster) snapshotNodes() []*node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// probeOne refreshes one node's report and drives its health transitions:
// up → admitted to the arbiter (a grant floor of one worker is guaranteed),
// down → released so its budget share flows to the survivors.
func (c *Cluster) probeOne(n *node) {
	resp, err := n.client.Get(n.addr + "/healthz")
	if err != nil {
		c.markDown(n, err)
		return
	}
	var h HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil || !h.OK {
		if err == nil {
			err = fmt.Errorf("worker reports not-ok")
		}
		c.markDown(n, err)
		return
	}
	n.mu.Lock()
	wasHealthy := n.healthy
	n.healthy = true
	n.lastErr = ""
	n.report = core.NodeReport{LP: h.LP, Active: h.Active, Queued: h.Queued, MaxLP: h.MaxLP}
	n.mu.Unlock()
	if !wasHealthy {
		_ = c.arb.AdmitNode(n.addr, n)
		c.emit(NodeEvent{Addr: n.addr, Up: true, Time: c.clk.Now()})
	}
}

// markDown records a node loss: release its arbiter share immediately so
// the next rebalance hands it to the survivors.
func (c *Cluster) markDown(n *node, cause error) {
	n.mu.Lock()
	wasHealthy := n.healthy
	n.healthy = false
	n.lastErr = cause.Error()
	n.mu.Unlock()
	if wasHealthy {
		// Forget the cached grant: a restarted worker comes back at its own
		// default LP, so an identical re-grant must not be deduped away.
		n.grant.Store(0)
		c.arb.ReleaseNode(n.addr)
		c.emit(NodeEvent{Addr: n.addr, Up: false, Time: c.clk.Now(), Err: cause.Error()})
	}
}

func (c *Cluster) emit(ev NodeEvent) {
	c.evMu.Lock()
	fn := c.onEvent
	c.evMu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// SetOnNodeEvent replaces the health-transition observer. The daemon uses
// it to thread node-loss events into running jobs' event logs.
func (c *Cluster) SetOnNodeEvent(fn func(NodeEvent)) {
	c.evMu.Lock()
	c.onEvent = fn
	c.evMu.Unlock()
}

// The cluster exposes node count as the resource lever, exactly like
// dist.Cluster and the local pool expose threads.
var _ core.LPControl = (*Cluster)(nil)

// LP implements core.LPControl: the number of enabled nodes.
func (c *Cluster) LP() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// SetLP implements core.LPControl: enable the first n configured nodes.
// Like decommissioning pool threads, disabled nodes finish the batch they
// hold; they simply receive no further work.
func (c *Cluster) SetLP(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 1 {
		n = 1
	}
	if n > len(c.nodes) {
		n = len(c.nodes)
	}
	c.enabled = n
}

// Budget returns the cluster-wide LP budget.
func (c *Cluster) Budget() int { return c.arb.Budget() }

// Granted returns the sum of current per-node grants (≤ Budget always).
func (c *Cluster) Granted() int { return c.arb.Granted() }

// Healthy counts currently healthy nodes.
func (c *Cluster) Healthy() int {
	h := 0
	for _, n := range c.snapshotNodes() {
		n.mu.Lock()
		if n.healthy {
			h++
		}
		n.mu.Unlock()
	}
	return h
}

// Nodes exports per-node accounting in endpoint order.
func (c *Cluster) Nodes() []NodeStatus {
	c.mu.Lock()
	nodes := make([]*node, len(c.nodes))
	copy(nodes, c.nodes)
	enabled := c.enabled
	c.mu.Unlock()
	out := make([]NodeStatus, len(nodes))
	for i, n := range nodes {
		n.mu.Lock()
		out[i] = NodeStatus{
			Addr:    n.addr,
			Healthy: n.healthy,
			Enabled: i < enabled,
			Grant:   int(n.grant.Load()),
			Tasks:   n.tasks.Load(),
			Report:  n.report,
			LastErr: n.lastErr,
		}
		n.mu.Unlock()
	}
	return out
}

// Eligible reports whether a blueprint can run on the cluster: it must
// declare a remote codec and its program root must be a (possibly
// farm-wrapped) fan-out.
func Eligible(bp skandium.Blueprint, params skandium.Params) bool {
	if bp.Remote == nil {
		return false
	}
	runner, err := bp.Build(params)
	if err != nil {
		return false
	}
	prog, err := plan.Of(runner.Node())
	if err != nil {
		return false
	}
	return Shardable(prog) != nil
}

// Shardable returns the program's top-level fan-out step — the unit the
// coordinator shards across nodes — or nil when the program has another
// shape. Farm wraps are transparent (farm(s) ≡ s with replication), so a
// farm-of-map shards exactly like the map itself.
func Shardable(p *plan.Program) *plan.Step {
	st := p.Root()
	for st.Op() == plan.OpWrap {
		st = st.Child(0)
	}
	if st.Op() == plan.OpFanOut {
		return st
	}
	return nil
}

// Run executes one eligible blueprint job on the cluster: split locally,
// ship encoded parts to healthy workers (each resolving the program by
// registry name), collect per-part results with retry-on-node-loss, merge
// locally. It blocks until the job resolves.
func (c *Cluster) Run(blueprint string, params skandium.Params) (any, error) {
	c.jobMu.Lock()
	defer c.jobMu.Unlock()

	bp, ok := skandium.LookupBlueprint(blueprint)
	if !ok {
		return nil, fmt.Errorf("remote: unknown blueprint %q", blueprint)
	}
	if bp.Remote == nil {
		return nil, fmt.Errorf("remote: blueprint %q is not cluster-eligible: no remote codec", blueprint)
	}
	if params == nil {
		params = skandium.Params{}
	}
	runner, err := bp.Build(params)
	if err != nil {
		return nil, fmt.Errorf("remote: build %s: %w", blueprint, err)
	}
	prog, err := plan.Of(runner.Node())
	if err != nil {
		return nil, fmt.Errorf("remote: compile %s: %w", blueprint, err)
	}
	fan := Shardable(prog)
	if fan == nil {
		return nil, fmt.Errorf("remote: %s is not shardable: program root is %s, not a fan-out", blueprint, prog.Root().Op())
	}

	parts, err := fan.Split().CallSplit(runner.Input())
	if err != nil {
		return nil, fmt.Errorf("remote: split: %w", err)
	}
	raws := make([]json.RawMessage, len(parts))
	for i, p := range parts {
		if raws[i], err = bp.Remote.EncodePart(p); err != nil {
			return nil, fmt.Errorf("remote: encode part %d: %w", i, err)
		}
	}

	preq := ProgramRequest{Blueprint: blueprint, Params: params, Step: fan.Index()}
	results := make([]json.RawMessage, len(parts))
	if err := c.dispatch(preq, raws, results); err != nil {
		return nil, err
	}

	vals := make([]any, len(results))
	for i, raw := range results {
		if vals[i], err = bp.Remote.DecodeResult(raw); err != nil {
			return nil, fmt.Errorf("remote: decode result %d: %w", i, err)
		}
	}
	return fan.Merge().CallMerge(vals)
}

// taskError is a deterministic per-task failure reported by a worker (the
// muscle itself errored). It fails the job — requeueing would re-fail
// forever on another node.
type taskError struct {
	seq int
	msg string
}

func (e *taskError) Error() string {
	return fmt.Sprintf("remote: task %d failed on worker: %s", e.seq, e.msg)
}

// dispatch shards the encoded parts over the enabled healthy nodes: one
// runner goroutine per node pulls parts from a shared queue in small
// batches sized by the node's current arbiter grant. A node failure
// requeues its in-flight batch and retires the runner; surviving nodes
// drain the queue, which is exactly the SIGKILL-mid-job story the
// acceptance test exercises.
func (c *Cluster) dispatch(preq ProgramRequest, parts []json.RawMessage, results []json.RawMessage) error {
	if len(parts) == 0 {
		return nil
	}
	pending := make(chan int, len(parts))
	for i := range parts {
		pending <- i
	}
	var remaining atomic.Int64
	remaining.Store(int64(len(parts)))
	done := make(chan struct{})
	var closeDone sync.Once
	var failure atomic.Pointer[taskError]

	var wg sync.WaitGroup
	launched := 0
	c.mu.Lock()
	enabled := c.nodes[:c.enabled]
	c.mu.Unlock()
	for _, n := range enabled {
		n.mu.Lock()
		ok := n.healthy
		n.mu.Unlock()
		if !ok {
			continue
		}
		launched++
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			c.nodeRunner(n, preq, parts, results, pending, &remaining, done, &closeDone, &failure)
		}(n)
	}
	if launched == 0 {
		return fmt.Errorf("remote: no healthy workers")
	}
	wg.Wait()
	if f := failure.Load(); f != nil {
		return f
	}
	if remaining.Load() > 0 {
		return fmt.Errorf("remote: all workers lost with %d tasks unfinished", remaining.Load())
	}
	return nil
}

func (c *Cluster) nodeRunner(n *node, preq ProgramRequest,
	parts, results []json.RawMessage, pending chan int,
	remaining *atomic.Int64, done chan struct{}, closeDone *sync.Once,
	failure *atomic.Pointer[taskError]) {

	if err := n.postProgram(preq); err != nil {
		c.markDown(n, err)
		return
	}
	for {
		var batch []int
		select {
		case <-done:
			return
		case i := <-pending:
			batch = append(batch, i)
		}
		// Greedily widen the batch up to the node's grant: the arbiter's
		// per-node LP is the pacing signal for how much work to ship.
		limit := int(n.grant.Load())
		if limit < 1 {
			limit = 1
		}
	fill:
		for len(batch) < limit {
			select {
			case i := <-pending:
				batch = append(batch, i)
			default:
				break fill
			}
		}

		resps, err := n.postTasks(batch, parts)
		if err != nil {
			for _, i := range batch {
				pending <- i
			}
			c.markDown(n, err)
			return
		}
		for _, i := range batch {
			resp := resps[i]
			if resp.Error != "" {
				failure.CompareAndSwap(nil, &taskError{seq: i, msg: resp.Error})
				closeDone.Do(func() { close(done) })
				return
			}
			results[i] = resp.Result
			n.tasks.Add(1)
			if remaining.Add(-1) == 0 {
				closeDone.Do(func() { close(done) })
				return
			}
		}
	}
}

func (n *node) postProgram(preq ProgramRequest) error {
	body, err := json.Marshal(preq)
	if err != nil {
		return err
	}
	resp, err := n.client.Post(n.addr+"/program", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var pr ProgramResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return fmt.Errorf("program response: %w", err)
	}
	if !pr.OK {
		return fmt.Errorf("program load refused: %s", pr.Error)
	}
	return nil
}

// postTasks ships one NDJSON batch and returns the responses keyed by
// sequence number. A short or malformed response fails the whole batch, so
// the caller requeues it — results are only consumed from complete replies.
func (n *node) postTasks(batch []int, parts []json.RawMessage) (map[int]TaskResponse, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, i := range batch {
		if err := enc.Encode(TaskRequest{Seq: i, Part: parts[i]}); err != nil {
			return nil, err
		}
	}
	resp, err := n.client.Post(n.addr+"/tasks", "application/x-ndjson", &buf)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	out := make(map[int]TaskResponse, len(batch))
	for {
		var tr TaskResponse
		if err := dec.Decode(&tr); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("task response: %w", err)
		}
		if tr.Seq < 0 {
			return nil, fmt.Errorf("worker rejected batch: %s", tr.Error)
		}
		out[tr.Seq] = tr
	}
	for _, i := range batch {
		if _, ok := out[i]; !ok {
			return nil, fmt.Errorf("worker reply missing task %d", i)
		}
	}
	return out, nil
}
