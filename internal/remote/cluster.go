package remote

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"skandium"
	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/exec"
	"skandium/internal/plan"
)

// NodeEvent reports a worker health-state transition — the coordinator's
// view of the cluster changing shape. The daemon threads these into the
// running remote jobs' event logs. Degradation markers (work drained to the
// local pool) use Addr "local" with From == To.
type NodeEvent struct {
	Addr string
	// From/To are the health states around the transition.
	From, To NodeState
	// Up is kept for the binary view: the node still serves work.
	Up   bool
	Time time.Time
	// Err is the failure that drove a downward transition.
	Err string
	// Cause is the failure category ("refused", "timeout", "http-5xx",
	// "proto", ...) — the classification the old markDown lost.
	Cause string
}

// Config describes the cluster a coordinator manages.
type Config struct {
	// Workers is the static endpoint list ("host:port" or full URLs).
	Workers []string
	// Budget is the cluster-wide LP budget the arbiter divides into
	// per-node grants (default: 4 × workers).
	Budget int
	// ProbeInterval paces the health probe loop and the dispatch
	// supervisor (default 250ms).
	ProbeInterval time.Duration
	// Rebalance paces the arbiter's grant re-division (default 250ms).
	Rebalance time.Duration
	// HTTPTimeout bounds every worker round-trip *attempt* (default 10s);
	// the RPC policy bounds how many attempts are made.
	HTTPTimeout time.Duration
	// RPC tunes the transient-fault retry layer around every dispatch
	// round trip (zero value = 3 attempts, 25ms base, ×2, ±20% jitter).
	RPC RPCPolicy
	// Health tunes the node state machine thresholds (zero value =
	// suspect after 1 failure, down after 3, 2 probation probes, cap 1).
	Health HealthConfig
	// Transport substitutes the HTTP transport of every worker connection
	// (nil = default). The seam the chaos.NetInjector plugs into.
	Transport http.RoundTripper
	// NoDegrade disables the local-pool fallback: when healthy capacity
	// collapses mid-job the job fails (the pre-partition-tolerance
	// behaviour) instead of draining the remaining shards locally.
	NoDegrade bool
	// LocalLP is the parallelism of the degradation pool (default 4).
	LocalLP int
	// MinServing is the serving-node threshold that triggers mid-job local
	// draining (default 1): when fewer nodes still serve, the local pool
	// joins the dispatch as one more consumer.
	MinServing int
	// HedgeAfter, when positive, re-enqueues a claimed-but-unfinished task
	// after this stall so a second node can race the straggler — only when
	// the cluster arbiter has budget slack. Worker-side dedup keeps the
	// hedge harmless when both attempts land on the same node; result
	// consumption is exactly-once either way. Zero disables hedging.
	HedgeAfter time.Duration
	// Clock stamps events and decisions (default system clock).
	Clock clock.Clock
	// OnNodeEvent observes health transitions (may be nil). Called from
	// probe and dispatch goroutines; must not block.
	OnNodeEvent func(NodeEvent)
}

// Cluster is the centralised coordinator: it discovers workers from the
// static endpoint list, health-probes them through a per-node state machine
// (healthy → suspect → down → probation), shards fan-out tasks across the
// serving ones with transient-fault RPC retries, idempotent re-dispatch and
// requeue-on-node-loss, and runs a cluster-wide core.ClusterArbiter so Σ
// per-node LP grants never exceeds the global budget. When healthy capacity
// collapses mid-job it degrades gracefully: remaining shards drain to a
// local pool instead of failing the job. It implements core.LPControl — the
// lever is the number of enabled nodes, so the unchanged autonomic
// machinery can scale the cluster like it scales a thread pool.
type Cluster struct {
	cfg    Config
	clk    clock.Clock
	arb    *core.ClusterArbiter
	client *http.Client
	rpc    *rpc
	id     string

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	stopArb   func()

	evMu    sync.Mutex
	onEvent func(NodeEvent)

	// jobMu serialises remote jobs: a worker holds one program at a time,
	// so the coordinator ships one job's tasks at a time. Concurrent
	// eligible jobs queue here (see DESIGN §11).
	jobMu  sync.Mutex
	jobSeq atomic.Int64

	poolMu sync.Mutex
	lpool  *exec.Pool

	degraded atomic.Int64 // tasks drained to the local pool
	hedged   atomic.Int64 // straggler tasks re-enqueued for hedging
	hedgeOff atomic.Bool  // brownout: speculative duplicates suspended

	mu      sync.Mutex
	nodes   []*node
	enabled int
	closed  bool
}

// node is the coordinator's proxy for one worker endpoint. It is the
// core.Member the cluster arbiter divides the budget over: Demand derives
// from the last probed report (clamped to the probation cap while the node
// re-earns trust), Grant pushes the share to the worker's pool.
type node struct {
	addr   string
	client *http.Client
	hp     *health

	// tmu serialises health-transition side effects (arbiter admission,
	// release, event emission) so concurrent probe/dispatch outcomes can
	// never interleave them out of order.
	tmu      sync.Mutex
	admitted bool

	mu        sync.Mutex
	report    core.NodeReport
	lastErr   string
	lastCause Cause

	grant atomic.Int64
	tasks atomic.Int64
}

func (n *node) state() NodeState { return n.hp.State() }

func (n *node) Demand() core.Demand {
	n.mu.Lock()
	rep := n.report
	n.mu.Unlock()
	d := core.NodeDemand(rep)
	if n.hp.State() == StateProbation {
		d = core.CapDemand(d, n.hp.cfg.ProbationCap)
	}
	return d
}

func (n *node) Grant(g int) {
	if int64(g) == n.grant.Swap(int64(g)) {
		return
	}
	n.pushLP(g)
}

// pushLP ships a grant to the worker's pool. Asynchronous: grants are
// advisory pacing, the next probe re-reads the truth, and the arbiter must
// never block on a slow node.
func (n *node) pushLP(g int) {
	go func() {
		body, _ := json.Marshal(LPRequest{LP: g})
		resp, err := n.client.Post(n.addr+"/lp", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
}

// NodeStatus is one worker's coordinator-side accounting, exported to
// skelrund's /metrics and /healthz.
type NodeStatus struct {
	Addr    string
	Healthy bool // state == healthy
	State   string
	Enabled bool
	Grant   int
	Tasks   int64
	// ConsecFails is the current consecutive-failure streak.
	ConsecFails int
	Report      core.NodeReport
	LastErr     string
	// LastCause is the category of the last failure ("" when none).
	LastCause string
}

// New builds a coordinator over the configured workers, probes them once
// synchronously (so callers start with a live view), and starts the probe
// and rebalance loops.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("remote: no worker endpoints configured")
	}
	if cfg.Budget < 1 {
		cfg.Budget = 4 * len(cfg.Workers)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.Rebalance <= 0 {
		cfg.Rebalance = 250 * time.Millisecond
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 10 * time.Second
	}
	if cfg.LocalLP < 1 {
		cfg.LocalLP = 4
	}
	if cfg.MinServing < 1 {
		cfg.MinServing = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	client := &http.Client{Timeout: cfg.HTTPTimeout, Transport: cfg.Transport}
	c := &Cluster{
		cfg:       cfg,
		clk:       cfg.Clock,
		arb:       core.NewClusterArbiter(cfg.Budget, cfg.Clock),
		client:    client,
		rpc:       newRPC(client, cfg.Clock, cfg.RPC),
		id:        fmt.Sprintf("%x", time.Now().UnixNano()),
		stopProbe: make(chan struct{}),
		enabled:   len(cfg.Workers),
		onEvent:   cfg.OnNodeEvent,
	}
	for _, addr := range cfg.Workers {
		if len(addr) < 7 || (addr[:7] != "http://" && (len(addr) < 8 || addr[:8] != "https://")) {
			addr = "http://" + addr
		}
		c.nodes = append(c.nodes, &node{addr: addr, client: c.client, hp: newHealth(cfg.Health)})
	}
	for _, n := range c.nodes {
		c.probeOne(n)
	}
	c.stopArb = c.arb.StartTicker(cfg.Rebalance)
	c.probeWG.Add(1)
	go c.probeLoop()
	return c, nil
}

// Close stops the probe and rebalance loops and the degradation pool.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stopProbe)
	c.probeWG.Wait()
	c.stopArb()
	c.poolMu.Lock()
	if c.lpool != nil {
		c.lpool.Close()
		c.lpool = nil
	}
	c.poolMu.Unlock()
}

func (c *Cluster) probeLoop() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopProbe:
			return
		case <-t.C:
			for _, n := range c.snapshotNodes() {
				c.probeOne(n)
			}
		}
	}
}

func (c *Cluster) snapshotNodes() []*node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// probeOne refreshes one node's report and feeds the state machine. Probes
// are single-attempt on purpose — the probe loop is itself the retry.
func (c *Cluster) probeOne(n *node) {
	resp, err := n.client.Get(n.addr + "/healthz")
	if err != nil {
		c.noteFail(n, ClassifyErr(err), err)
		return
	}
	var h HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil || !h.OK {
		cause := CauseProto
		if err == nil {
			err = fmt.Errorf("worker reports not-ok")
			cause = CauseServer
		}
		c.noteFail(n, cause, err)
		return
	}
	n.mu.Lock()
	n.report = core.NodeReport{LP: h.LP, Active: h.Active, Queued: h.Queued, MaxLP: h.MaxLP}
	n.mu.Unlock()
	if g := int(n.grant.Load()); g > 0 && h.LP > g {
		// The worker runs above its standing grant — the restart signature:
		// it came back at its own default LP behind a blip too short to
		// retire the node, so neither the arbiter (grant unchanged) nor the
		// node cache would re-push. Reconcile directly from the probe.
		n.pushLP(g)
	}
	c.noteOK(n)
}

// noteOK records a successful node interaction (probe or dispatch round
// trip): the state machine may promote the node, and a node returning from
// down is re-admitted to the arbiter — under its probation-capped demand.
func (c *Cluster) noteOK(n *node) {
	n.tmu.Lock()
	defer n.tmu.Unlock()
	from, to := n.hp.ok()
	n.mu.Lock()
	n.lastErr, n.lastCause = "", CauseNone
	n.mu.Unlock()
	admit := !n.admitted
	n.admitted = true
	if admit {
		// First contact, or return from down: the grant cache is stale (a
		// restarted worker is back at its own default LP), so forget it —
		// an identical re-grant must not be deduped away.
		n.grant.Store(0)
		_ = c.arb.AdmitNode(n.addr, n)
	}
	if from != to {
		c.emit(NodeEvent{Addr: n.addr, From: from, To: to, Up: to.Serving(), Time: c.clk.Now()})
	}
}

// noteFail records a failed node interaction with its classified cause and
// drives the state machine: enough consecutive failures retire the node
// (released from the arbiter so its share flows to the survivors). Busy
// (429) is flow control, not failure — it never advances the machine.
func (c *Cluster) noteFail(n *node, cause Cause, err error) {
	if cause == CauseBusy {
		return
	}
	n.tmu.Lock()
	defer n.tmu.Unlock()
	from, to := n.hp.fail()
	n.mu.Lock()
	n.lastErr, n.lastCause = err.Error(), cause
	n.mu.Unlock()
	if to == StateDown && n.admitted {
		n.admitted = false
		c.arb.ReleaseNode(n.addr)
	}
	if from != to {
		c.emit(NodeEvent{Addr: n.addr, From: from, To: to, Up: to.Serving(),
			Time: c.clk.Now(), Err: err.Error(), Cause: cause.String()})
	}
}

func (c *Cluster) emit(ev NodeEvent) {
	c.evMu.Lock()
	fn := c.onEvent
	c.evMu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// SetOnNodeEvent replaces the health-transition observer. The daemon uses
// it to thread node-loss events into running jobs' event logs.
func (c *Cluster) SetOnNodeEvent(fn func(NodeEvent)) {
	c.evMu.Lock()
	c.onEvent = fn
	c.evMu.Unlock()
}

// The cluster exposes node count as the resource lever, exactly like
// dist.Cluster and the local pool expose threads.
var _ core.LPControl = (*Cluster)(nil)

// LP implements core.LPControl: the number of enabled nodes.
func (c *Cluster) LP() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// SetLP implements core.LPControl: enable the first n configured nodes.
// Like decommissioning pool threads, disabled nodes finish the batch they
// hold; they simply receive no further work.
func (c *Cluster) SetLP(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 1 {
		n = 1
	}
	if n > len(c.nodes) {
		n = len(c.nodes)
	}
	c.enabled = n
}

// Budget returns the cluster-wide LP budget.
func (c *Cluster) Budget() int { return c.arb.Budget() }

// Granted returns the sum of current per-node grants (≤ Budget always).
func (c *Cluster) Granted() int { return c.arb.Granted() }

// Degraded returns the number of tasks drained to the local pool because
// cluster capacity collapsed mid-job.
func (c *Cluster) Degraded() int64 { return c.degraded.Load() }

// Hedged returns the number of straggler tasks re-enqueued for hedging.
func (c *Cluster) Hedged() int64 { return c.hedged.Load() }

// Healthy counts nodes currently in the healthy state (suspect and
// probation nodes still serve; see Serving).
func (c *Cluster) Healthy() int {
	h := 0
	for _, n := range c.snapshotNodes() {
		if n.state() == StateHealthy {
			h++
		}
	}
	return h
}

// Serving counts enabled nodes the coordinator currently ships work to
// (healthy, suspect or probation).
func (c *Cluster) Serving() int {
	c.mu.Lock()
	enabled := c.nodes[:c.enabled]
	c.mu.Unlock()
	s := 0
	for _, n := range enabled {
		if n.state().Serving() {
			s++
		}
	}
	return s
}

// Nodes exports per-node accounting in endpoint order.
func (c *Cluster) Nodes() []NodeStatus {
	c.mu.Lock()
	nodes := make([]*node, len(c.nodes))
	copy(nodes, c.nodes)
	enabled := c.enabled
	c.mu.Unlock()
	out := make([]NodeStatus, len(nodes))
	for i, n := range nodes {
		st := n.state()
		n.mu.Lock()
		out[i] = NodeStatus{
			Addr:        n.addr,
			Healthy:     st == StateHealthy,
			State:       st.String(),
			Enabled:     i < enabled,
			Grant:       int(n.grant.Load()),
			Tasks:       n.tasks.Load(),
			ConsecFails: n.hp.ConsecFails(),
			Report:      n.report,
			LastErr:     n.lastErr,
		}
		if n.lastCause != CauseNone {
			out[i].LastCause = n.lastCause.String()
		}
		n.mu.Unlock()
	}
	return out
}

// Eligible reports whether a blueprint can run on the cluster: it must
// declare a remote codec and its program root must be a (possibly
// farm-wrapped) fan-out.
func Eligible(bp skandium.Blueprint, params skandium.Params) bool {
	if bp.Remote == nil {
		return false
	}
	runner, err := bp.Build(params)
	if err != nil {
		return false
	}
	prog, err := plan.Of(runner.Node())
	if err != nil {
		return false
	}
	return Shardable(prog) != nil
}

// Shardable returns the program's top-level fan-out step — the unit the
// coordinator shards across nodes — or nil when the program has another
// shape. Farm wraps are transparent (farm(s) ≡ s with replication), so a
// farm-of-map shards exactly like the map itself.
func Shardable(p *plan.Program) *plan.Step {
	st := p.Root()
	for st.Op() == plan.OpWrap {
		st = st.Child(0)
	}
	if st.Op() == plan.OpFanOut {
		return st
	}
	return nil
}

// jobRun is the shared state of one dispatched job: the pending-task queue
// the node runners (and, under degradation, the local runner) pull from,
// and the exactly-once result slots. completed is the consumption guard —
// however many times a task is dispatched (RPC replays, hedges, requeues),
// only the first finisher writes its result and decrements remaining.
type jobRun struct {
	job      string
	preq     ProgramRequest
	encParts []json.RawMessage // wire-encoded fan-out parts
	parts    []any             // decoded originals (local fallback path)
	body     *plan.Program     // fan-out body, for local execution

	pending   chan int
	remaining atomic.Int64
	completed []atomic.Bool
	claimedAt []atomic.Int64 // unix-nano claim stamps, 0 = unclaimed
	hedgeOnce []atomic.Bool

	results  []json.RawMessage // remote results, wire form
	localRes []any             // local results, decoded form
	isLocal  []bool            // guarded by the completed CAS

	done      chan struct{}
	closeDone sync.Once
	failure   atomic.Pointer[taskError]
}

func newJobRun(job string, preq ProgramRequest, encParts []json.RawMessage, parts []any, body *plan.Program) *jobRun {
	jr := &jobRun{
		job:      job,
		preq:     preq,
		encParts: encParts,
		parts:    parts,
		body:     body,
		// Generous capacity: a seq can transiently have a few copies in
		// flight (owner requeue + hedge), and sends must never block a
		// runner into deadlock.
		pending:   make(chan int, 4*len(encParts)+8),
		completed: make([]atomic.Bool, len(encParts)),
		claimedAt: make([]atomic.Int64, len(encParts)),
		hedgeOnce: make([]atomic.Bool, len(encParts)),
		results:   make([]json.RawMessage, len(encParts)),
		localRes:  make([]any, len(encParts)),
		isLocal:   make([]bool, len(encParts)),
		done:      make(chan struct{}),
	}
	jr.remaining.Store(int64(len(encParts)))
	for i := range encParts {
		jr.pending <- i
	}
	return jr
}

func (jr *jobRun) finish() { jr.closeDone.Do(func() { close(jr.done) }) }

// fail records a deterministic task failure and resolves the run.
func (jr *jobRun) fail(seq int, msg string) {
	jr.failure.CompareAndSwap(nil, &taskError{seq: seq, msg: msg})
	jr.finish()
}

// completeRemote consumes one worker result exactly once; duplicate
// completions (hedge losers, replays) are dropped.
func (jr *jobRun) completeRemote(seq int, raw json.RawMessage) bool {
	if !jr.completed[seq].CompareAndSwap(false, true) {
		return false
	}
	jr.results[seq] = raw
	jr.claimedAt[seq].Store(0)
	if jr.remaining.Add(-1) == 0 {
		jr.finish()
	}
	return true
}

// completeLocal consumes one locally-computed result exactly once.
func (jr *jobRun) completeLocal(seq int, res any) bool {
	if !jr.completed[seq].CompareAndSwap(false, true) {
		return false
	}
	jr.localRes[seq] = res
	jr.isLocal[seq] = true
	jr.claimedAt[seq].Store(0)
	if jr.remaining.Add(-1) == 0 {
		jr.finish()
	}
	return true
}

// requeue puts a claimed-but-unfinished seq back on the queue.
func (jr *jobRun) requeue(seq int) {
	jr.claimedAt[seq].Store(0)
	if jr.completed[seq].Load() {
		return
	}
	jr.pending <- seq
}

// Run executes one eligible blueprint job on the cluster: split locally,
// ship encoded parts to serving workers (each resolving the program by
// registry name), collect per-part results with transient-fault retries,
// idempotent re-dispatch and requeue-on-node-loss, merge locally. When the
// cluster browns out the remaining shards drain to a local pool. It blocks
// until the job resolves.
func (c *Cluster) Run(blueprint string, params skandium.Params) (any, error) {
	return c.RunAs("", blueprint, params)
}

// RunAs is Run with the submitting tenant threaded into the dispatch, so
// per-worker logs and metrics can attribute the load.
func (c *Cluster) RunAs(tenant, blueprint string, params skandium.Params) (any, error) {
	c.jobMu.Lock()
	defer c.jobMu.Unlock()

	bp, ok := skandium.LookupBlueprint(blueprint)
	if !ok {
		return nil, fmt.Errorf("remote: unknown blueprint %q", blueprint)
	}
	if bp.Remote == nil {
		return nil, fmt.Errorf("remote: blueprint %q is not cluster-eligible: no remote codec", blueprint)
	}
	if params == nil {
		params = skandium.Params{}
	}
	runner, err := bp.Build(params)
	if err != nil {
		return nil, fmt.Errorf("remote: build %s: %w", blueprint, err)
	}
	prog, err := plan.Of(runner.Node())
	if err != nil {
		return nil, fmt.Errorf("remote: compile %s: %w", blueprint, err)
	}
	fan := Shardable(prog)
	if fan == nil {
		return nil, fmt.Errorf("remote: %s is not shardable: program root is %s, not a fan-out", blueprint, prog.Root().Op())
	}
	body, err := plan.Of(fan.Child(0).Node())
	if err != nil {
		return nil, fmt.Errorf("remote: compile fan-out body: %w", err)
	}

	parts, err := fan.Split().CallSplit(runner.Input())
	if err != nil {
		return nil, fmt.Errorf("remote: split: %w", err)
	}
	// The coordinator-side split observes the fan-out width; feed the
	// optimizer's pre-sizing hint on the cached program (nil when the
	// optimizer is off).
	fan.CardHint().Record(len(parts))
	raws := make([]json.RawMessage, len(parts))
	for i, p := range parts {
		if raws[i], err = bp.Remote.EncodePart(p); err != nil {
			return nil, fmt.Errorf("remote: encode part %d: %w", i, err)
		}
	}

	job := fmt.Sprintf("%s-%d", c.id, c.jobSeq.Add(1))
	preq := ProgramRequest{Blueprint: blueprint, Params: params, Step: fan.Index(), Job: job, Tenant: tenant}
	jr := newJobRun(job, preq, raws, parts, body)
	if err := c.dispatch(jr); err != nil {
		return nil, err
	}

	vals := make([]any, len(jr.results))
	for i := range jr.results {
		if jr.isLocal[i] {
			vals[i] = jr.localRes[i]
			continue
		}
		if vals[i], err = bp.Remote.DecodeResult(jr.results[i]); err != nil {
			return nil, fmt.Errorf("remote: decode result %d: %w", i, err)
		}
	}
	return fan.Merge().CallMerge(vals)
}

// taskError is a deterministic per-task failure (the muscle itself
// errored). It fails the job — requeueing would re-fail forever on another
// node.
type taskError struct {
	seq int
	msg string
}

func (e *taskError) Error() string {
	return fmt.Sprintf("remote: task %d failed on worker: %s", e.seq, e.msg)
}

// runnerExit tells the dispatch supervisor why a node runner retired.
type runnerExit struct {
	n *node
	// refused marks a deterministic program-load refusal (registry drift):
	// the node is healthy but cannot serve this job.
	refused bool
	err     error
}

// dispatch shards the job over the serving nodes: one runner goroutine per
// node pulls tasks from the shared queue in grant-sized batches. A
// supervisor loop relaunches runners on nodes that recover mid-job
// (probation re-admission), hedges stragglers when the arbiter has slack,
// and — when serving capacity drops below the threshold — drains the
// remaining tasks to the local pool instead of failing the job.
func (c *Cluster) dispatch(jr *jobRun) error {
	if len(jr.encParts) == 0 {
		jr.finish()
		return nil
	}

	exits := make(chan runnerExit, len(c.snapshotNodes())+1)
	running := map[string]bool{}  // addr → runner active
	refused := map[string]error{} // addr → deterministic program refusal
	localStarted := false

	startLocal := func() {
		if localStarted || c.cfg.NoDegrade {
			return
		}
		localStarted = true
		c.emit(NodeEvent{Addr: "local", From: StateHealthy, To: StateHealthy,
			Up: true, Time: c.clk.Now(), Cause: "degrade"})
		go c.localRunner(jr)
	}
	launch := func(n *node) {
		if running[n.addr] || refused[n.addr] != nil || !n.state().Serving() {
			return
		}
		running[n.addr] = true
		go func() { exits <- c.nodeRunner(n, jr) }()
	}
	enabledNodes := func() []*node {
		c.mu.Lock()
		defer c.mu.Unlock()
		out := make([]*node, c.enabled)
		copy(out, c.nodes[:c.enabled])
		return out
	}

	for _, n := range enabledNodes() {
		launch(n)
	}
	if len(running) == 0 {
		if c.cfg.NoDegrade {
			return fmt.Errorf("remote: no serving workers")
		}
		startLocal()
	}

	tick := time.NewTicker(c.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-jr.done:
			if f := jr.failure.Load(); f != nil {
				return f
			}
			return nil
		case ex := <-exits:
			delete(running, ex.n.addr)
			if ex.refused {
				refused[ex.n.addr] = ex.err
			}
		case <-tick.C:
		}

		// Re-evaluate the fleet: relaunch runners on nodes that recovered
		// (or were re-enabled), and decide whether to degrade locally.
		nodes := enabledNodes()
		serving := 0
		for _, n := range nodes {
			if n.state().Serving() && refused[n.addr] == nil {
				serving++
			}
			launch(n)
		}
		if len(refused) == len(nodes) && len(running) == 0 && !localStarted {
			// Every worker deterministically refused the program: the job
			// cannot run remotely, and locally only if degradation is on.
			if c.cfg.NoDegrade {
				for _, err := range refused {
					return fmt.Errorf("remote: all workers refused the program: %w", err)
				}
			}
			startLocal()
		}
		if serving < c.cfg.MinServing {
			if c.cfg.NoDegrade {
				if len(running) == 0 && serving == 0 {
					return fmt.Errorf("remote: all workers lost with %d tasks unfinished", jr.remaining.Load())
				}
			} else {
				startLocal()
			}
		}
		if c.cfg.HedgeAfter > 0 && !c.hedgeOff.Load() {
			c.hedgeStragglers(jr)
		}
	}
}

// SetHedging suspends (false) or resumes (true) straggler hedging at
// runtime. The daemon turns it off while browned out: a speculative
// duplicate is optional work, and optional work is the first load shed
// under sustained overload.
func (c *Cluster) SetHedging(on bool) { c.hedgeOff.Store(!on) }

// HedgingEnabled reports whether straggler hedging is currently allowed
// (it still requires HedgeAfter > 0 to do anything).
func (c *Cluster) HedgingEnabled() bool { return !c.hedgeOff.Load() }

// hedgeStragglers re-enqueues tasks that have been claimed longer than
// HedgeAfter, once each, when the cluster arbiter has budget slack — a
// second node races the straggler, and the exactly-once completion guard
// discards whichever copy loses.
func (c *Cluster) hedgeStragglers(jr *jobRun) {
	if c.arb.Granted() >= c.arb.Budget() {
		return
	}
	now := c.clk.Now().UnixNano()
	horizon := c.cfg.HedgeAfter.Nanoseconds()
	for i := range jr.claimedAt {
		ts := jr.claimedAt[i].Load()
		if ts == 0 || now-ts < horizon || jr.completed[i].Load() {
			continue
		}
		if !jr.hedgeOnce[i].CompareAndSwap(false, true) {
			continue
		}
		select {
		case jr.pending <- i:
			c.hedged.Add(1)
		default:
			jr.hedgeOnce[i].Store(false)
		}
	}
}

// localPool lazily builds the degradation pool.
func (c *Cluster) localPool() *exec.Pool {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	if c.lpool == nil {
		c.lpool = exec.NewPool(c.clk, c.cfg.LocalLP, 0)
	}
	return c.lpool
}

// localRunner drains pending tasks on the local pool: the graceful
// degradation path when cluster capacity collapses mid-job. It is one more
// consumer of the shared queue, so surviving nodes and the local pool race
// for the remainder and the exactly-once guard arbitrates.
func (c *Cluster) localRunner(jr *jobRun) {
	pool := c.localPool()
	sem := make(chan struct{}, c.cfg.LocalLP)
	for {
		select {
		case <-jr.done:
			return
		case i := <-jr.pending:
			if jr.completed[i].Load() {
				continue
			}
			jr.claimedAt[i].Store(c.clk.Now().UnixNano())
			sem <- struct{}{}
			go func(i int) {
				defer func() { <-sem }()
				res, err := exec.NewRoot(pool, nil, c.clk).StartProgram(jr.body, jr.parts[i]).Get()
				if err != nil {
					jr.fail(i, err.Error())
					return
				}
				if jr.completeLocal(i, res) {
					c.degraded.Add(1)
				}
			}(i)
		}
	}
}

// nodeRunner serves one node for one job: program load, then grant-sized
// batches pulled from the shared queue until the job resolves or the node
// fails terminally. Transient RPC faults are absorbed by the retry layer;
// an exhausted retry budget requeues the in-flight batch, advances the
// node's health state machine, and retires the runner — the supervisor
// relaunches it if the node recovers.
func (c *Cluster) nodeRunner(n *node, jr *jobRun) runnerExit {
	if err := c.postProgram(n, jr.preq); err != nil {
		cause := CauseOf(err)
		if cause == CauseClient {
			return runnerExit{n: n, refused: true, err: err}
		}
		if cause != CauseBusy {
			c.noteFail(n, cause, err)
		}
		return runnerExit{n: n, err: err}
	}
	for {
		// Pre-size the batch to the grant (capped by the job's shard count):
		// the fan-out cardinality is known up front, so the NDJSON batch
		// never regrows while it fills.
		batchCap := int(n.grant.Load())
		if batchCap < 1 {
			batchCap = 1
		}
		if w := len(jr.encParts); w < batchCap {
			batchCap = w
		}
		batch := make([]int, 0, batchCap)
		select {
		case <-jr.done:
			return runnerExit{n: n}
		case i := <-jr.pending:
			if jr.completed[i].Load() {
				continue
			}
			batch = append(batch, i)
		}
		// Greedily widen the batch up to the node's grant: the arbiter's
		// per-node LP is the pacing signal for how much work to ship.
		limit := int(n.grant.Load())
		if limit < 1 {
			limit = 1
		}
	fill:
		for len(batch) < limit {
			select {
			case i := <-jr.pending:
				if jr.completed[i].Load() {
					continue
				}
				batch = append(batch, i)
			default:
				break fill
			}
		}
		now := c.clk.Now().UnixNano()
		for _, i := range batch {
			jr.claimedAt[i].Store(now)
		}

		resps, err := c.postTasks(n, jr, batch)
		if err != nil {
			for _, i := range batch {
				jr.requeue(i)
			}
			var re *RPCError
			if errors.As(err, &re) && re.Status == http.StatusConflict {
				// The worker restarted (or fenced a stale epoch) and lost
				// the program: re-load and keep serving.
				if perr := c.postProgram(n, jr.preq); perr == nil {
					continue
				}
			}
			cause := CauseOf(err)
			if cause == CauseBusy {
				// Admission shed: honor the worker's pacing hint, then keep
				// serving — saturation is not sickness.
				clock.Sleep(c.clk, busyHint(err))
				continue
			}
			c.noteFail(n, cause, err)
			return runnerExit{n: n, err: err}
		}
		// A complete reply is health evidence: feed the state machine so a
		// suspect node that keeps serving climbs back to healthy.
		c.noteOK(n)
		for _, i := range batch {
			resp := resps[i]
			if resp.Error != "" {
				jr.fail(i, resp.Error)
				return runnerExit{n: n}
			}
			if jr.completeRemote(i, resp.Result) {
				n.tasks.Add(1)
			}
		}
	}
}

// busyHint extracts the Retry-After pacing from a terminal busy error.
func busyHint(err error) time.Duration {
	var be *busyError
	if errors.As(err, &be) && be.retryAfter > 0 {
		return be.retryAfter
	}
	return 100 * time.Millisecond
}

// postProgram loads the job's program onto a worker through the
// transient-fault RPC layer.
func (c *Cluster) postProgram(n *node, preq ProgramRequest) error {
	body, err := json.Marshal(preq)
	if err != nil {
		return err
	}
	return c.rpc.post("POST /program", n.addr+"/program", "application/json", body, func(r io.Reader) error {
		var pr ProgramResponse
		if err := json.NewDecoder(r).Decode(&pr); err != nil {
			return fmt.Errorf("program response: %w", err)
		}
		if !pr.OK {
			return fmt.Errorf("program load refused: %s", pr.Error)
		}
		return nil
	})
}

// postTasks ships one NDJSON batch through the transient-fault RPC layer
// and returns the responses keyed by sequence number. A short or malformed
// reply classifies as a torn (proto) fault and is retried against the same
// node — the worker's dedup slots make the replay execute nothing twice.
// Results are only ever consumed from complete replies.
func (c *Cluster) postTasks(n *node, jr *jobRun, batch []int) (map[int]TaskResponse, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, i := range batch {
		if err := enc.Encode(TaskRequest{Seq: i, Part: jr.encParts[i], Job: jr.job}); err != nil {
			return nil, err
		}
	}
	var out map[int]TaskResponse
	err := c.rpc.post("POST /tasks", n.addr+"/tasks", "application/x-ndjson", buf.Bytes(), func(r io.Reader) error {
		m := make(map[int]TaskResponse, len(batch))
		dec := json.NewDecoder(r)
		for {
			var tr TaskResponse
			if err := dec.Decode(&tr); err != nil {
				if err == io.EOF {
					break
				}
				return fmt.Errorf("task response: %w", err)
			}
			if tr.Seq < 0 {
				return fmt.Errorf("worker rejected batch: %s", tr.Error)
			}
			m[tr.Seq] = tr
		}
		for _, i := range batch {
			if _, ok := m[i]; !ok {
				return fmt.Errorf("worker reply missing task %d", i)
			}
		}
		out = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
