package remote

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"syscall"
	"time"

	"skandium/internal/clock"
)

// Cause classifies why a worker round trip failed. The coordinator's
// failure handling branches on it: transient causes are retried by the RPC
// layer and advance the node health state machine when the retry budget is
// exhausted; CauseBusy is flow control (back off, do not distrust the
// node); CauseClient is deterministic (retrying cannot help).
type Cause int

const (
	// CauseNone means the round trip succeeded.
	CauseNone Cause = iota
	// CauseRefused is a connection refusal — the classic dead-process or
	// partitioned-host signature (ECONNREFUSED, ECONNRESET, dial errors).
	CauseRefused
	// CauseTimeout is a deadline overrun anywhere in the round trip: the
	// ambiguous failure — the worker may or may not have executed the
	// request, which is why task dispatch must be idempotent.
	CauseTimeout
	// CauseConn is any other transport-level error (broken pipe, EOF
	// mid-request, DNS).
	CauseConn
	// CauseServer is an HTTP 5xx from the worker.
	CauseServer
	// CauseBusy is HTTP 429/503: the worker shed the request under
	// admission control. Retried after the Retry-After hint; never counts
	// against the node's health.
	CauseBusy
	// CauseClient is any other HTTP 4xx: a deterministic refusal (unknown
	// blueprint, malformed frame, job mismatch). Never retried.
	CauseClient
	// CauseProto is a torn or short reply: the HTTP exchange succeeded but
	// the body did not decode to a complete response. Like a timeout, the
	// worker may have executed the request.
	CauseProto
)

// String names the cause for event records and metrics labels.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseRefused:
		return "refused"
	case CauseTimeout:
		return "timeout"
	case CauseConn:
		return "conn"
	case CauseServer:
		return "http-5xx"
	case CauseBusy:
		return "busy"
	case CauseClient:
		return "http-4xx"
	case CauseProto:
		return "proto"
	default:
		return "unknown"
	}
}

// Transient reports whether retrying the same node can plausibly succeed.
func (c Cause) Transient() bool {
	switch c {
	case CauseRefused, CauseTimeout, CauseConn, CauseServer, CauseBusy, CauseProto:
		return true
	default:
		return false
	}
}

// Ambiguous reports whether the worker may have executed the request even
// though the coordinator saw a failure — the double-execution hazard the
// worker-side dedup exists for.
func (c Cause) Ambiguous() bool {
	return c == CauseTimeout || c == CauseProto || c == CauseConn
}

// RPCError is a classified worker round-trip failure.
type RPCError struct {
	// Cause is the failure category.
	Cause Cause
	// Status is the HTTP status when the exchange completed (0 otherwise).
	Status int
	// Attempts is how many attempts were made before giving up.
	Attempts int
	// Op names the failed operation ("POST /tasks").
	Op string
	// Err is the last underlying error.
	Err error
}

func (e *RPCError) Error() string {
	return fmt.Sprintf("%s: %s after %d attempt(s): %v", e.Op, e.Cause, e.Attempts, e.Err)
}

func (e *RPCError) Unwrap() error { return e.Err }

// CauseOf extracts the classified cause from an error (CauseConn when the
// error is not an RPCError — every transport failure is at least a
// connection-level transient).
func CauseOf(err error) Cause {
	var re *RPCError
	if errors.As(err, &re) {
		return re.Cause
	}
	if err == nil {
		return CauseNone
	}
	return ClassifyErr(err)
}

// ClassifyErr classifies a transport-level error (no HTTP status was
// produced). Timeout detection goes through net.Error so both real
// deadline overruns and injected chaos timeouts classify identically.
func ClassifyErr(err error) Cause {
	if err == nil {
		return CauseNone
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return CauseTimeout
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) {
		return CauseRefused
	}
	return CauseConn
}

// ClassifyStatus classifies a completed HTTP exchange.
func ClassifyStatus(status int) Cause {
	switch {
	case status >= 200 && status < 300:
		return CauseNone
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		return CauseBusy
	case status >= 500:
		return CauseServer
	case status >= 400:
		return CauseClient
	default:
		return CauseProto
	}
}

// RPCPolicy bounds the transient-fault retry loop around one worker round
// trip: per-attempt budget with seeded exponential backoff + jitter,
// mirroring the muscle-level exec.RetryPolicy so both layers of the system
// degrade the same way. The zero value gets defaults (3 attempts, 25ms
// base, ×2 growth, 1s cap, ±20% jitter).
type RPCPolicy struct {
	// MaxAttempts is the total number of attempts (first call included).
	MaxAttempts int
	// BaseDelay is the wait before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff.
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (values < 1 default to 2).
	Multiplier float64
	// Jitter is the relative backoff noise in [0,1].
	Jitter float64
	// Seed fixes the jitter sequence (0 uses seed 1).
	Seed int64
}

func (p RPCPolicy) withDefaults() RPCPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	return p
}

// rpc is the transient-fault HTTP layer every coordinator→worker round trip
// goes through: per-attempt timeouts come from the shared http.Client, and
// transient failures (refused / timeout / 5xx / torn replies) are retried
// with seeded exponential backoff so one dropped packet no longer kills a
// node. 429 responses honor the worker's Retry-After hint.
type rpc struct {
	client *http.Client
	clk    clock.Clock
	pol    RPCPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

func newRPC(client *http.Client, clk clock.Clock, pol RPCPolicy) *rpc {
	pol = pol.withDefaults()
	seed := pol.Seed
	if seed == 0 {
		seed = 1
	}
	return &rpc{
		client: client,
		clk:    clk,
		pol:    pol,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// backoff computes the jittered exponential wait before retry attempt k
// (1-based), floored at the server's Retry-After hint when one was given.
func (r *rpc) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := float64(r.pol.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= r.pol.Multiplier
	}
	if d > float64(r.pol.MaxDelay) {
		d = float64(r.pol.MaxDelay)
	}
	if r.pol.Jitter > 0 {
		r.mu.Lock()
		u := r.rng.Float64()
		r.mu.Unlock()
		d *= 1 + r.pol.Jitter*(2*u-1)
	}
	if d < 0 {
		d = 0
	}
	if wait := time.Duration(d); wait >= retryAfter {
		return wait
	}
	return retryAfter
}

// retryAfterHint parses a 429/503 Retry-After header (seconds form only; an
// HTTP-date hint is ignored rather than parsed — the backoff still paces).
func retryAfterHint(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// post runs one POST through the retry loop. consume reads a 2xx body; an
// error it returns classifies as CauseProto (torn reply) and is retried
// like any transient — the worker-side dedup makes the replay safe. Bodies
// are byte slices so every attempt re-sends identical content.
func (r *rpc) post(op, url, contentType string, body []byte, consume func(io.Reader) error) error {
	for attempt := 1; ; attempt++ {
		cause, status, err := r.attempt(url, contentType, body, consume)
		if cause == CauseNone {
			return nil
		}
		if !cause.Transient() || attempt >= r.pol.MaxAttempts {
			return &RPCError{Cause: cause, Status: status, Attempts: attempt, Op: op, Err: err}
		}
		var hint time.Duration
		var be *busyError
		if errors.As(err, &be) {
			hint = be.retryAfter
		}
		clock.Sleep(r.clk, r.backoff(attempt, hint))
	}
}

// busyError carries a worker's admission-control shed and its pacing hint.
type busyError struct {
	status     int
	retryAfter time.Duration
}

func (e *busyError) Error() string {
	return fmt.Sprintf("worker saturated (HTTP %d, retry after %s)", e.status, e.retryAfter)
}

// attempt performs a single classified round trip.
func (r *rpc) attempt(url, contentType string, body []byte, consume func(io.Reader) error) (Cause, int, error) {
	resp, err := r.client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return ClassifyErr(err), 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	cause := ClassifyStatus(resp.StatusCode)
	switch cause {
	case CauseNone:
		if consume != nil {
			if err := consume(resp.Body); err != nil {
				return CauseProto, resp.StatusCode, err
			}
		}
		return CauseNone, resp.StatusCode, nil
	case CauseBusy:
		return CauseBusy, resp.StatusCode, &busyError{status: resp.StatusCode, retryAfter: retryAfterHint(resp)}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return cause, resp.StatusCode, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
}
