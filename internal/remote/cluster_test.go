package remote

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"skandium"
	"skandium/internal/muscle"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// newTestCluster builds a coordinator over in-process workers served on
// real HTTP listeners.
func newTestCluster(t *testing.T, cfg Config, workers int) (*Cluster, []*Worker) {
	t.Helper()
	ws := make([]*Worker, workers)
	for i := range ws {
		w := NewWorker(WorkerConfig{LP: 2, MaxLP: 4})
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(func() { srv.Close(); w.Close() })
		ws[i] = w
		cfg.Workers = append(cfg.Workers, srv.URL)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, ws
}

func TestClusterRunFarmJob(t *testing.T) {
	c, ws := newTestCluster(t, Config{Budget: 6, ProbeInterval: 25 * time.Millisecond}, 2)
	res, err := c.Run("remotetest-grid", skandium.Params{"n": 16})
	if err != nil {
		t.Fatal(err)
	}
	if res != gridSum(16) {
		t.Fatalf("result %v, want %d", res, gridSum(16))
	}
	total := int64(0)
	for _, w := range ws {
		total += w.tasks.Load()
	}
	if total != 16 {
		t.Fatalf("workers executed %d tasks, want 16", total)
	}
	if c.Granted() > c.Budget() {
		t.Fatalf("granted %d exceeds budget %d", c.Granted(), c.Budget())
	}
}

func TestClusterRejectsIneligible(t *testing.T) {
	c, _ := newTestCluster(t, Config{}, 1)
	if _, err := c.Run("remotetest-local", nil); err == nil ||
		!strings.Contains(err.Error(), "not cluster-eligible") {
		t.Fatalf("err %v, want cluster-eligibility refusal", err)
	}
	if _, err := c.Run("no-such", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown blueprint") {
		t.Fatalf("err %v, want unknown-blueprint refusal", err)
	}
}

func TestClusterTaskErrorFailsJob(t *testing.T) {
	skandium.RegisterBlueprint(skandium.Blueprint{
		Name:        "remotetest-failing",
		Description: "a grid whose cells always fail",
		Remote:      skandium.JSONCodec[gridCell, int](),
		Build: func(p skandium.Params) (skandium.Runner, error) {
			fs := skandium.NewSplit("cells", func(total int) ([]gridCell, error) {
				return make([]gridCell, total), nil
			})
			fe := skandium.NewExec("boom", func(c gridCell) (int, error) {
				return 0, fmt.Errorf("cell exploded")
			})
			fm := skandium.NewMerge("sum", func(parts []int) (int, error) { return 0, nil })
			return skandium.NewRunner(skandium.Map(fs, skandium.Seq(fe), fm), p.Int("n", 4)), nil
		},
	})
	c, _ := newTestCluster(t, Config{}, 1)
	if _, err := c.Run("remotetest-failing", nil); err == nil ||
		!strings.Contains(err.Error(), "cell exploded") {
		t.Fatalf("err %v, want the muscle error surfaced (not retried forever)", err)
	}
}

func TestEligibleAndShardable(t *testing.T) {
	grid, _ := skandium.LookupBlueprint("remotetest-grid")
	local, _ := skandium.LookupBlueprint("remotetest-local")
	if !Eligible(grid, skandium.Params{}) {
		t.Fatal("farm(map) grid with codec should be eligible")
	}
	if Eligible(local, skandium.Params{}) {
		t.Fatal("codec-less blueprint must not be eligible")
	}
}

// TestShardableOnOptimizedProgram: the optimizer is annotation-only, so the
// coordinator's shard-shape detection finds the same fan-out step — at the
// same pre-order index — on a raw and an optimized program of one farm(map)
// blueprint, and the optimized step carries the pre-sizing hint slot.
func TestShardableOnOptimizedProgram(t *testing.T) {
	fs := muscle.NewSplit("cells", func(p any) ([]any, error) { return []any{p}, nil })
	fe := muscle.NewExecute("cell", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("sum", func(ps []any) (any, error) { return ps[0], nil })
	nd := skel.NewFarm(skel.NewMap(fs, skel.NewSeq(fe), fm))

	raw, err := plan.Compile(nd)
	if err != nil {
		t.Fatal(err)
	}
	opt := plan.Optimize(raw)
	rawFan, optFan := Shardable(raw), Shardable(opt)
	if rawFan == nil || optFan == nil {
		t.Fatalf("Shardable: raw=%v opt=%v, want fan-out on both", rawFan, optFan)
	}
	if rawFan.Index() != optFan.Index() || optFan.Op() != plan.OpFanOut {
		t.Fatalf("fan-out moved: raw #%d, optimized #%d (%v)",
			rawFan.Index(), optFan.Index(), optFan.Op())
	}
	if optFan.CardHint() == nil {
		t.Fatal("optimized fan-out lacks the pre-sizing hint slot")
	}
	if rawFan.CardHint() != nil {
		t.Fatal("raw fan-out unexpectedly annotated")
	}
}

// TestClusterRepushesGrantAfterRestart: a worker that dies and comes back
// at its own default LP must receive its grant again, even when the
// arbiter re-divides to the identical value — the dedup cache must not
// swallow the re-push.
func TestClusterRepushesGrantAfterRestart(t *testing.T) {
	serve := func(w *Worker) (*http.Server, string, func()) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: w.Handler()}
		go srv.Serve(ln)
		return srv, ln.Addr().String(), func() { srv.Close(); ln.Close() }
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The worker starts above the idle grant (demand floors at 1), so the
	// arbiter's push is observable as LP 3 → 1.
	w1 := NewWorker(WorkerConfig{LP: 3, MaxLP: 8})
	defer w1.Close()
	_, addr, stop := serve(w1)
	c, err := New(Config{
		Workers:       []string{addr},
		Budget:        5,
		ProbeInterval: 20 * time.Millisecond,
		Rebalance:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor("initial grant on the worker pool", func() bool { return w1.Report().LP == 1 })

	stop()
	waitFor("node marked down", func() bool { return c.Healthy() == 0 })

	// Same address, fresh process, back at its default LP 3. The arbiter
	// re-divides to the identical grant of 1 — it must still be pushed.
	w2 := NewWorker(WorkerConfig{LP: 3, MaxLP: 8})
	defer w2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			srv := &http.Server{Handler: w2.Handler()}
			go srv.Serve(ln)
			defer func() { srv.Close(); ln.Close() }()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitFor("grant re-pushed to the restarted worker", func() bool { return w2.Report().LP == 1 })
}

// workerProc is one re-exec'd skelworker process (see TestMain).
type workerProc struct {
	addr string
	url  string
	cmd  *exec.Cmd
}

func startWorkerProc(t *testing.T) *workerProc {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SKELWORKER_TEST_ADDR="+addr)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &workerProc{addr: addr, url: "http://" + addr, cmd: cmd}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
			_, _ = p.cmd.Process.Wait()
		}
	})
	// Wait for the worker to serve.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.url + "/healthz")
		if err == nil {
			var h HealthResponse
			ok := json.NewDecoder(resp.Body).Decode(&h) == nil && h.OK
			resp.Body.Close()
			if ok {
				return p
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("worker on %s never became healthy", addr)
	return nil
}

// TestClusterSurvivesWorkerSIGKILL is the acceptance test: a 2-worker
// cluster of real processes completes a farm job end-to-end with muscles
// resolved by registry name, one worker is SIGKILLed mid-job, the
// coordinator rebalances the lost tasks onto the survivor, and Σ per-node
// grants never exceeds the cluster budget.
func TestClusterSurvivesWorkerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process acceptance test")
	}
	w1 := startWorkerProc(t)
	w2 := startWorkerProc(t)

	var evMu sync.Mutex
	var events []NodeEvent
	c, err := New(Config{
		Workers:       []string{w1.addr, w2.addr},
		Budget:        4,
		ProbeInterval: 50 * time.Millisecond,
		Rebalance:     50 * time.Millisecond,
		OnNodeEvent: func(ev NodeEvent) {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Healthy(); got != 2 {
		t.Fatalf("healthy workers %d, want 2", got)
	}

	// Budget invariant, sampled concurrently with the run.
	stopSampling := make(chan struct{})
	var sampleWG sync.WaitGroup
	var budgetViolation error
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		for {
			select {
			case <-stopSampling:
				return
			case <-time.After(20 * time.Millisecond):
				if g, b := c.Granted(), c.Budget(); g > b {
					budgetViolation = fmt.Errorf("Σ grants %d exceeds budget %d", g, b)
					return
				}
			}
		}
	}()

	// 24 cells × 150ms over 2 workers (2 LP each) keeps the job running
	// well past the kill below.
	kill := time.AfterFunc(400*time.Millisecond, func() {
		_ = w2.cmd.Process.Kill()
	})
	defer kill.Stop()

	const n = 24
	res, err := c.Run("remotetest-grid", skandium.Params{"n": n, "sleep_ms": 150})
	close(stopSampling)
	sampleWG.Wait()
	if err != nil {
		t.Fatalf("job failed despite a surviving worker: %v", err)
	}
	if res != gridSum(n) {
		t.Fatalf("result %v, want %d — tasks lost in the rebalance", res, gridSum(n))
	}
	if budgetViolation != nil {
		t.Fatal(budgetViolation)
	}

	// The coordinator noticed the loss and released the node.
	evMu.Lock()
	sawDown := false
	for _, ev := range events {
		if !ev.Up && strings.Contains(ev.Addr, w2.addr) {
			sawDown = true
		}
	}
	evMu.Unlock()
	if !sawDown {
		t.Fatal("no node-down event for the SIGKILLed worker")
	}
	for _, st := range c.Nodes() {
		if strings.Contains(st.Addr, w2.addr) && st.Healthy {
			t.Fatal("SIGKILLed worker still marked healthy")
		}
	}
	if c.Granted() > c.Budget() {
		t.Fatalf("granted %d exceeds budget %d after node loss", c.Granted(), c.Budget())
	}
}
