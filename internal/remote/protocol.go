// Package remote turns the paper's §4/§6 sketch — "a centralised
// distribution of tasks to a distributed set of workers, adding or removing
// workers like adding or removing threads in a centralised manner" — into
// running processes: skelworker processes interpret the shared compiled
// program IR behind an HTTP/NDJSON endpoint, and a coordinator (Cluster)
// shards fan-out tasks across them under a cluster-wide LP budget arbiter.
//
// Muscles are Go functions and never cross the wire. A program is shipped
// *by name*: the coordinator sends {blueprint, params, step} and the worker
// re-builds the identical skeleton from its own blueprint registry, compiles
// it through the same plan.Of, and walks the same IR — the registry is the
// code-distribution mechanism, exactly like the class name in the paper's
// Java transfer objects. Values DO cross the wire, so only blueprints that
// declare a RemoteCodec (skandium.Blueprint.Remote) are cluster-eligible.
package remote

import "encoding/json"

// DefaultMaxFrame bounds one NDJSON line on the task endpoint. Oversized
// frames are rejected cleanly (HTTP 400), never buffered unboundedly.
const DefaultMaxFrame = 4 << 20

// ProgramRequest loads a job's program onto a worker (POST /program). The
// worker resolves Blueprint in its registry, builds it with Params, compiles
// the skeleton to the IR and pins the fan-out step at pre-order index Step
// as the per-task entry point. A worker holds one program at a time.
type ProgramRequest struct {
	Blueprint string         `json:"blueprint"`
	Params    map[string]any `json:"params,omitempty"`
	Step      int            `json:"step"`
	// Job is the coordinator's unique epoch for this job run. Loading a
	// program under a new Job resets the worker's per-task dedup state;
	// re-loading the same Job (a re-admitted node rejoining mid-job)
	// preserves it, so replayed batches still hit the cache.
	Job string `json:"job,omitempty"`
	// Tenant tags the dispatch with the submitting tenant, so worker logs
	// and metrics can attribute cluster load. Optional and informational:
	// admission fairness is enforced at the coordinator's front door.
	Tenant string `json:"tenant,omitempty"`
}

// ProgramResponse acknowledges a program load. Program echoes the worker's
// own rendering of the skeleton in the paper's syntax, so the coordinator
// can detect a registry drift (same name, different program) early.
type ProgramResponse struct {
	OK      bool   `json:"ok"`
	Program string `json:"program,omitempty"`
	Error   string `json:"error,omitempty"`
}

// TaskRequest is one NDJSON line of a task batch (POST /tasks): a fan-out
// part, encoded by the blueprint's RemoteCodec, tagged with the
// coordinator's sequence number.
type TaskRequest struct {
	Seq  int             `json:"seq"`
	Part json.RawMessage `json:"part"`
	// Job fences the task to its job epoch: a worker rejects batches whose
	// Job differs from its loaded program's (HTTP 409), so a delayed
	// retransmission from an earlier job can never execute under a newer
	// program.
	Job string `json:"job,omitempty"`
}

// TaskResponse is the worker's NDJSON reply line for one task.
type TaskResponse struct {
	Seq    int             `json:"seq"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// HealthResponse is the worker's probe reply (GET /healthz): the pool
// counters the coordinator converts into a core.NodeReport, which is what
// the cluster arbiter divides the global LP budget by.
type HealthResponse struct {
	OK        bool   `json:"ok"`
	Blueprint string `json:"blueprint,omitempty"`
	LP        int    `json:"lp"`
	Active    int    `json:"active"`
	Queued    int    `json:"queued"`
	MaxLP     int    `json:"max_lp"`
	Tasks     int64  `json:"tasks"`
	// Deduped counts task requests served from the idempotency cache
	// instead of re-executing the muscle (coordinator replays absorbed).
	Deduped int64 `json:"deduped,omitempty"`
	// Shed counts task batches refused with 429 under admission control.
	Shed int64 `json:"shed,omitempty"`
}

// LPRequest pushes an arbiter grant to the worker's pool (POST /lp).
type LPRequest struct {
	LP int `json:"lp"`
}
