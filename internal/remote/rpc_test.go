package remote

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"skandium/internal/chaos"
	"skandium/internal/clock"
)

func TestClassifyStatus(t *testing.T) {
	cases := []struct {
		status int
		want   Cause
	}{
		{200, CauseNone}, {204, CauseNone},
		{429, CauseBusy}, {503, CauseBusy},
		{500, CauseServer}, {502, CauseServer},
		{400, CauseClient}, {404, CauseClient}, {409, CauseClient}, {422, CauseClient},
	}
	for _, c := range cases {
		if got := ClassifyStatus(c.status); got != c.want {
			t.Errorf("ClassifyStatus(%d) = %s, want %s", c.status, got, c.want)
		}
	}
}

func TestClassifyErr(t *testing.T) {
	if got := ClassifyErr(syscall.ECONNREFUSED); got != CauseRefused {
		t.Errorf("ECONNREFUSED classified %s, want refused", got)
	}
	if got := ClassifyErr(fmt.Errorf("wrap: %w", syscall.ECONNRESET)); got != CauseRefused {
		t.Errorf("wrapped ECONNRESET classified %s, want refused", got)
	}
	// Injected chaos faults must classify exactly like real ones.
	timeout := &chaos.InjectedNetError{Op: "read", Host: "x", IsTimeout: true}
	if got := ClassifyErr(timeout); got != CauseTimeout {
		t.Errorf("injected timeout classified %s, want timeout", got)
	}
	refused := &chaos.InjectedNetError{Op: "dial", Host: "x", Refused: true}
	if got := ClassifyErr(refused); got != CauseRefused {
		t.Errorf("injected refusal classified %s, want refused", got)
	}
	if got := ClassifyErr(io.ErrUnexpectedEOF); got != CauseConn {
		t.Errorf("plain transport error classified %s, want conn", got)
	}
}

func TestCauseTransitivity(t *testing.T) {
	for _, c := range []Cause{CauseRefused, CauseTimeout, CauseConn, CauseServer, CauseBusy, CauseProto} {
		if !c.Transient() {
			t.Errorf("%s must be transient", c)
		}
	}
	if CauseClient.Transient() {
		t.Error("http-4xx must not be transient")
	}
	for _, c := range []Cause{CauseTimeout, CauseProto, CauseConn} {
		if !c.Ambiguous() {
			t.Errorf("%s must be ambiguous (worker may have executed)", c)
		}
	}
	if CauseRefused.Ambiguous() {
		t.Error("a refused connection is unambiguous: the request never arrived")
	}
}

// TestRPCRetriesTransient: a server failing twice with 500 then succeeding
// is absorbed by the default 3-attempt budget.
func TestRPCRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer srv.Close()

	r := newRPC(srv.Client(), clock.System, RPCPolicy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	err := r.post("POST /x", srv.URL, "application/json", []byte("{}"), nil)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestRPCExhaustsBudget: persistent failure surfaces as a classified
// RPCError carrying the attempt count.
func TestRPCExhaustsBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer srv.Close()

	r := newRPC(srv.Client(), clock.System, RPCPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	err := r.post("POST /x", srv.URL, "application/json", nil, nil)
	var re *RPCError
	if !errors.As(err, &re) {
		t.Fatalf("error %v, want *RPCError", err)
	}
	if re.Cause != CauseServer || re.Attempts != 2 || re.Status != http.StatusBadGateway {
		t.Fatalf("RPCError %+v, want cause http-5xx, 2 attempts, status 502", re)
	}
}

// TestRPCClientErrorNotRetried: 4xx is deterministic — exactly one attempt.
func TestRPCClientErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such thing", http.StatusUnprocessableEntity)
	}))
	defer srv.Close()

	r := newRPC(srv.Client(), clock.System, RPCPolicy{})
	err := r.post("POST /x", srv.URL, "application/json", nil, nil)
	if CauseOf(err) != CauseClient {
		t.Fatalf("cause %s, want http-4xx", CauseOf(err))
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want exactly 1 (no retry on 4xx)", calls.Load())
	}
}

// TestRPCTornReplyRetried: a consume error (short body) classifies as proto
// and is retried against the same endpoint.
func TestRPCTornReplyRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprint(w, "{}")
	}))
	defer srv.Close()

	r := newRPC(srv.Client(), clock.System, RPCPolicy{BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	err := r.post("POST /x", srv.URL, "application/json", nil, func(io.Reader) error {
		if calls.Load() < 2 {
			return fmt.Errorf("reply torn")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

// TestRPCHonorsRetryAfter: a 429's Retry-After floors the backoff and the
// terminal error carries the busy cause with the hint.
func TestRPCHonorsRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "saturated", http.StatusTooManyRequests)
	}))
	defer srv.Close()

	clk := clock.NewVirtual(clock.Epoch)
	r := newRPC(srv.Client(), clk, RPCPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Jitter: -1})
	// The retry sleeps through the virtual clock; advance it from the side
	// so the post returns.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(100 * time.Millisecond)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	err := r.post("POST /x", srv.URL, "application/json", nil, nil)
	close(stop)
	if CauseOf(err) != CauseBusy {
		t.Fatalf("cause %s, want busy", CauseOf(err))
	}
	var be *busyError
	if !errors.As(err, &be) || be.retryAfter != time.Second {
		t.Fatalf("error %v, want busyError with 1s Retry-After", err)
	}
	// The backoff between the two attempts must have been floored at the
	// Retry-After hint, not the 1ms base delay.
	if got := clk.Now().Sub(clock.Epoch); got < time.Second {
		t.Fatalf("virtual clock advanced only %v, want >= the 1s Retry-After floor", got)
	}
}

// TestBackoffGrowsAndCaps: the jittered exponential stays inside its
// envelope and respects MaxDelay.
func TestBackoffGrowsAndCaps(t *testing.T) {
	r := newRPC(nil, clock.System, RPCPolicy{
		MaxAttempts: 10, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond, Multiplier: 2, Jitter: 0.2, Seed: 7,
	})
	for attempt := 1; attempt <= 8; attempt++ {
		want := float64(10*time.Millisecond) * float64(int(1)<<(attempt-1))
		if want > float64(80*time.Millisecond) {
			want = float64(80 * time.Millisecond)
		}
		got := r.backoff(attempt, 0)
		lo, hi := time.Duration(want*0.8), time.Duration(want*1.2)
		if got < lo || got > hi {
			t.Fatalf("backoff(%d) = %v, want within [%v, %v]", attempt, got, lo, hi)
		}
	}
	if got := r.backoff(1, 300*time.Millisecond); got != 300*time.Millisecond {
		t.Fatalf("backoff with Retry-After floor = %v, want 300ms", got)
	}
}

// TestBackoffDeterministicPerSeed: same seed, same jitter sequence.
func TestBackoffDeterministicPerSeed(t *testing.T) {
	mk := func() []time.Duration {
		r := newRPC(nil, clock.System, RPCPolicy{BaseDelay: time.Millisecond, Seed: 42})
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = r.backoff(i+1, 0)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded backoff diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
