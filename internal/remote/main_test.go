package remote

import (
	"fmt"
	"log"
	"net/http"
	"os"
	"testing"
	"time"

	"skandium"
)

// The test blueprints every process sharing this binary registers: the
// coordinator side and the re-exec'd worker processes resolve the same
// names, which is exactly the registry-as-code-distribution contract.
func init() {
	skandium.RegisterBlueprint(testGridBlueprint())
	skandium.RegisterBlueprint(skandium.Blueprint{
		Name:        "remotetest-local",
		Description: "a blueprint with no remote codec: never cluster-eligible",
		Build: func(p skandium.Params) (skandium.Runner, error) {
			fe := skandium.NewExec("id", func(n int) (int, error) { return n, nil })
			return skandium.NewRunner(skandium.Seq(fe), 1), nil
		},
	})
}

// gridCell is one shard of the remotetest grid; it crosses the wire as
// JSON, so the codec restores the concrete type on the worker.
type gridCell struct {
	N       int
	SleepMS int
}

// testGridBlueprint is a farm of a map: split n cells, each sleeping
// sleep_ms and returning its index squared, merged by summation. The farm
// wrap makes it the acceptance criterion's "farm job"; Shardable sees
// through the wrap to the fan-out.
func testGridBlueprint() skandium.Blueprint {
	return skandium.Blueprint{
		Name:        "remotetest-grid",
		Description: "farm(map) of sleeping square cells, for cluster tests",
		Defaults:    skandium.Params{"n": 8, "sleep_ms": 0},
		Remote:      skandium.JSONCodec[gridCell, int](),
		Build: func(p skandium.Params) (skandium.Runner, error) {
			n := p.Int("n", 8)
			sleep := p.Int("sleep_ms", 0)
			if n < 1 {
				return nil, fmt.Errorf("remotetest-grid: n must be >= 1")
			}
			fs := skandium.NewSplit("cells", func(total int) ([]gridCell, error) {
				out := make([]gridCell, total)
				for i := range out {
					out[i] = gridCell{N: i, SleepMS: sleep}
				}
				return out, nil
			})
			fe := skandium.NewExec("square", func(c gridCell) (int, error) {
				if c.SleepMS > 0 {
					time.Sleep(time.Duration(c.SleepMS) * time.Millisecond)
				}
				return c.N * c.N, nil
			})
			fm := skandium.NewMerge("sum", func(parts []int) (int, error) {
				s := 0
				for _, v := range parts {
					s += v
				}
				return s, nil
			})
			program := skandium.Farm(skandium.Map(fs, skandium.Seq(fe), fm))
			return skandium.NewRunner(program, n), nil
		},
	}
}

// gridSum is the expected result of an n-cell grid: Σ i² for i in [0,n).
func gridSum(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i * i
	}
	return s
}

// TestMain doubles as the worker-process entry point: the acceptance test
// re-execs this binary with SKELWORKER_TEST_ADDR set, turning the child
// into a skelworker serving the shared registry (the same trick the
// daemon's crash-recovery tests use for SIGKILL targets).
func TestMain(m *testing.M) {
	if addr := os.Getenv("SKELWORKER_TEST_ADDR"); addr != "" {
		w := NewWorker(WorkerConfig{LP: 2, MaxLP: 4})
		log.Printf("test worker on %s", addr)
		if err := http.ListenAndServe(addr, w.Handler()); err != nil {
			log.Fatal(err)
		}
		return
	}
	os.Exit(m.Run())
}
